package scenario

import (
	"fmt"
	"testing"
)

// goldenSpecKey pins Built.Key() for the checked-in reference spec.
// Cache keys are content hashes of the full run configuration; a key
// that drifts without anyone touching the configuration means the
// encoding changed silently — exactly the stale-cache bug class the
// content-addressed design exists to prevent. If this test fails because
// you *deliberately* changed the spec schema, its defaults, the example
// spec, a generator, or the key encoding: bump the version tag in
// Built.Key (per the cache-key invariant) and update the constant below
// in the same commit.
const goldenSpecKey = "ccea10af4bea3297c58096f9971edb1bc8a14d6f4e64481742053ceb40eef1f7"

func TestGoldenScenarioKey(t *testing.T) {
	spec, err := LoadFile("../../examples/scenario/spec.json")
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Key(); got != goldenSpecKey {
		t.Errorf("examples/scenario/spec.json key drifted:\n  got  %s\n  want %s\n"+
			"If this change is intentional, bump the version tag in Built.Key and update goldenSpecKey.",
			got, goldenSpecKey)
	}

	// The golden value must also be sensitive: enabling the decisions
	// block has to move the key (its trace rides on cached results).
	spec.Decisions.Enabled = true
	spec.Normalize()
	b2, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if b2.Key() == goldenSpecKey {
		t.Error("decisions block does not feed the cache key (stale-cache hazard)")
	}

	// Likewise the fork block: a forked run must never alias its
	// unforked counterpart's cached result.
	spec.Decisions = DecisionsSpec{}
	spec.Fork = &ForkSpec{Rounds: 10}
	spec.Normalize()
	b3, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if b3.Key() == goldenSpecKey {
		t.Error("fork block does not feed the cache key (stale-cache hazard)")
	}
}

// TestGridAxisKeySensitivity: every grid axis must perturb the expanded
// cells' cache keys through the *configuration*, not just through the
// generated cell names. For each axis, a two-value single-axis grid is
// expanded and both cells are renamed to the same probe name before
// keying — if the keys still differ, the axis genuinely feeds the
// simulation inputs; if they collide, the axis is decorative and a
// sweep over it would serve one cell's cached result for the other (the
// stale-cache bug class).
func TestGridAxisKeySensitivity(t *testing.T) {
	axes := []struct {
		name string
		grid string
	}{
		{"seeds", `"seeds": [1, 2]`},
		{"nodes", `"nodes": [2, 4]`},
		{"gpus_per_node", `"gpus_per_node": [2, 4]`},
		{"policies", `"policies": ["pal", "pm-first"]`},
		{"scheds", `"scheds": ["fifo", "srtf"]`},
		{"jobs_per_hour", `"jobs_per_hour": [10, 20]`},
		{"num_jobs", `"num_jobs": [20, 40]`},
		{"arrivals", `"arrivals": ["poisson", "bursty"]`},
	}
	for _, ax := range axes {
		t.Run(ax.name, func(t *testing.T) {
			spec, err := Parse([]byte(fmt.Sprintf(
				`{"name": "sens", "cluster": {"nodes": 4}, "workload": {"source": "synthetic", "num_jobs": 20}, "grid": {%s}}`,
				ax.grid)))
			if err != nil {
				t.Fatal(err)
			}
			cells, err := spec.ExpandGrid()
			if err != nil {
				t.Fatal(err)
			}
			if len(cells) != 2 {
				t.Fatalf("expanded %d cells, want 2", len(cells))
			}
			keys := make([]string, len(cells))
			for i, c := range cells {
				c.Name = "probe"
				b, err := c.Build()
				if err != nil {
					t.Fatal(err)
				}
				keys[i] = b.Key()
			}
			if keys[0] == keys[1] {
				t.Errorf("axis %s does not perturb the cell cache key (both cells keyed %s)", ax.name, keys[0][:16])
			}
		})
	}
}
