package scenario

import (
	"testing"
)

// goldenSpecKey pins Built.Key() for the checked-in reference spec.
// Cache keys are content hashes of the full run configuration; a key
// that drifts without anyone touching the configuration means the
// encoding changed silently — exactly the stale-cache bug class the
// content-addressed design exists to prevent. If this test fails because
// you *deliberately* changed the spec schema, its defaults, the example
// spec, a generator, or the key encoding: bump the version tag in
// Built.Key (per the cache-key invariant) and update the constant below
// in the same commit.
const goldenSpecKey = "2c6221e08fac50220164dd5dac5fe931bf092698ef6db4e08c292831551e2c19"

func TestGoldenScenarioKey(t *testing.T) {
	spec, err := LoadFile("../../examples/scenario/spec.json")
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Key(); got != goldenSpecKey {
		t.Errorf("examples/scenario/spec.json key drifted:\n  got  %s\n  want %s\n"+
			"If this change is intentional, bump the version tag in Built.Key and update goldenSpecKey.",
			got, goldenSpecKey)
	}
}
