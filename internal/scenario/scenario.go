// Package scenario is the declarative configuration layer: it turns a
// JSON spec — cluster topology, variability-profile source, workload
// generator, policy selection by name — into a ready-to-run simulation,
// opening the scenario space beyond the paper's hard-coded Sia/Synergy/
// testbed configurations without writing Go for each new question.
//
// A spec is data, not code (the approach config-as-data simulators like
// BLIS use): the same JSON file drives `palsim -scenario` for one run,
// `palsweep -scenario` for concurrent cached runs, and programmatic use
// through Build. Policy names resolve through the registries in
// internal/sched and internal/place, so a policy registered by any
// package — including user extensions — is addressable from a spec with
// no further wiring.
//
// Specs are canonicalized before use: Parse applies documented defaults
// and validates, and Canonical re-serializes the normalized spec to
// stable bytes. Canonicalization is idempotent (parse → canonicalize →
// parse is a fixed point, pinned by tests), which is what makes the
// canonical form fit for content-addressing: Built.Key hashes the
// canonical spec plus the generated trace and profile content into the
// runner cache's key space, so identical scenarios reached from
// different files or processes simulate once.
//
// Everything downstream of a spec is deterministic: workloads, profiles
// and policy tie-breaking all derive their streams from the spec's seed
// via rng.Split, so a spec file is a complete, reproducible description
// of an experiment.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/decision"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Spec is the top-level declarative scenario description. Zero-valued
// optional fields select documented defaults during normalization;
// unknown JSON fields are rejected so typos fail loudly.
type Spec struct {
	// Name labels the scenario in tables and output files.
	Name string `json:"name"`
	// Seed is the root determinism seed. Workload generation, profile
	// sampling and policy tie-breaking derive independent sub-streams
	// from it. Default 1.
	Seed uint64 `json:"seed,omitempty"`

	Cluster  ClusterSpec  `json:"cluster"`
	Profile  ProfileSpec  `json:"profile"`
	Workload WorkloadSpec `json:"workload"`
	Policy   PolicySpec   `json:"policy"`
	Sched    SchedSpec    `json:"sched"`
	// Admission selects the admission-control policy by registered name
	// (default "admit-fits").
	Admission string        `json:"admission,omitempty"`
	Locality  LocalitySpec  `json:"locality"`
	Engine    EngineSpec    `json:"engine"`
	Metrics   MetricsSpec   `json:"metrics"`
	Decisions DecisionsSpec `json:"decisions"`
	// Fork, when present, makes the run a warmup-then-switch experiment:
	// the engine runs under the fork's warmup policies until the horizon
	// round, snapshots there, and continues under the spec's own
	// policies. Cells of one sweep that share a warmup prefix share the
	// snapshot (see Built.PrefixKey) — the sweep simulates the prefix
	// once and forks every cell from it.
	Fork *ForkSpec `json:"fork,omitempty"`
	// Grid, when present, turns the spec into a cross-product generator:
	// ExpandGrid yields one ordinary per-cell spec per combination of the
	// listed axis values. Grid-bearing specs cannot Build directly.
	Grid *GridSpec `json:"grid,omitempty"`
}

// ClusterSpec describes the simulated cluster's topology.
type ClusterSpec struct {
	Nodes        int `json:"nodes"`                   // default 16
	GPUsPerNode  int `json:"gpus_per_node,omitempty"` // default 4
	NodesPerRack int `json:"nodes_per_rack,omitempty"`
}

// ProfileSpec selects the variability profile jobs experience.
//
// Sources "longhorn" and "frontera" reproduce the paper's methodology:
// generate the full 416-GPU cluster profile, then sample the scenario's
// GPUs from it without repetition (§IV-C). Source "testbed" is the
// 64-GPU Fig. 8 subset. Source "file" loads a profile previously saved
// with vprof.Profile.Save.
type ProfileSpec struct {
	Source string `json:"source"` // longhorn | frontera | testbed | file; default longhorn
	// Seed for profile generation and GPU sampling. Defaults to the
	// experiments layer's constants (0x9A1; the testbed source uses its
	// shifted seed 0x9A8), so a scenario on a 64-GPU longhorn cluster
	// experiences the exact profile Fig. 11 ran on and a testbed
	// scenario the exact Fig. 8 profile.
	Seed uint64 `json:"seed,omitempty"`
	// Path of the profile JSON (source "file" only).
	Path string `json:"path,omitempty"`
}

// WorkloadSpec selects the job trace.
type WorkloadSpec struct {
	// Source: "sia-philly", "synergy", "synthetic" or "file".
	Source string `json:"source"`
	// Seed for workload generation; 0 defaults to the spec's root seed.
	Seed uint64 `json:"seed,omitempty"`

	// sia-philly: the workload index (1-8 in the paper) and optional
	// overrides of the published shape.
	Workload    int     `json:"workload,omitempty"`
	NumJobs     int     `json:"num_jobs,omitempty"`
	WindowHours float64 `json:"window_hours,omitempty"`

	// synergy and synthetic: mean arrival rate.
	JobsPerHour float64 `json:"jobs_per_hour,omitempty"`

	// synthetic: arrival process and distribution knobs
	// (trace.SynthParams documents defaults).
	Arrivals      string    `json:"arrivals,omitempty"` // poisson | bursty | diurnal
	BurstFactor   float64   `json:"burst_factor,omitempty"`
	BurstFraction float64   `json:"burst_fraction,omitempty"`
	BurstMeanSec  float64   `json:"burst_mean_sec,omitempty"`
	PeriodHours   float64   `json:"period_hours,omitempty"`
	PeakToTrough  float64   `json:"peak_to_trough,omitempty"`
	Demands       []int     `json:"demands,omitempty"`
	DemandWeights []float64 `json:"demand_weights,omitempty"`
	MedianWorkSec float64   `json:"median_work_sec,omitempty"`
	DurationSigma float64   `json:"duration_sigma,omitempty"`
	MinWorkSec    float64   `json:"min_work_sec,omitempty"`
	MaxWorkSec    float64   `json:"max_work_sec,omitempty"`

	// file: a trace previously saved with trace.Trace.Save — the replay
	// half of the generate → save → replay round trip.
	Path string `json:"path,omitempty"`
}

// PolicySpec selects the placement policy from the registry in
// internal/place ("pal", "pm-first", "packed-sticky"/"tiresias", ...).
type PolicySpec struct {
	Name string `json:"name"` // default "pal"
}

// SchedSpec selects the scheduling policy from the registry in
// internal/sched, with optional numeric parameters (e.g. las
// {"threshold_sec": 14400}).
type SchedSpec struct {
	Name   string             `json:"name"` // default "fifo"
	Params map[string]float64 `json:"params,omitempty"`
}

// LocalitySpec sets the locality-penalty model of Equation 1.
type LocalitySpec struct {
	// Lacross is the inter-node penalty (default 1.5).
	Lacross float64 `json:"lacross,omitempty"`
	// PerModel applies the Table II per-model penalties on top of
	// Lacross (missing models fall back to Lacross).
	PerModel bool `json:"per_model,omitempty"`
	// Lrack enables the three-level rack extension when positive
	// (requires cluster.nodes_per_rack > 0 to have any effect).
	Lrack float64 `json:"lrack,omitempty"`
}

// EngineSpec sets round-engine knobs; zero values mean the sim.Config
// defaults (300 s rounds, 1,000,000-round truncation cap).
type EngineSpec struct {
	RoundSec  float64 `json:"round_sec,omitempty"`
	MaxRounds int     `json:"max_rounds,omitempty"`
	// MigrationPenaltySec: 0 selects the default 10 s checkpoint/restore
	// cost; negative disables the penalty (same convention as the
	// experiments layer).
	MigrationPenaltySec float64 `json:"migration_penalty_sec,omitempty"`
	MeasureFirst        int     `json:"measure_first,omitempty"`
	MeasureLast         int     `json:"measure_last,omitempty"`
	RecordUtilization   bool    `json:"record_utilization,omitempty"`
	RecordEvents        bool    `json:"record_events,omitempty"`
}

// MetricsSpec attaches the telemetry collector (internal/metrics) to the
// run. Collection is fast-forward-safe — enabling it does not forfeit
// the engine's dead-time skipping — and purely observational: results
// with and without metrics are byte-identical. The collected payload
// rides on the result (and through the runner cache) and is what
// `palsim/palsweep -metrics` archive and `palreport` aggregates.
type MetricsSpec struct {
	// Enabled switches collection on. When false, every other field must
	// be zero (a configured-but-disabled block is almost certainly a
	// mistake, so it is rejected).
	Enabled bool `json:"enabled,omitempty"`
	// IntervalRounds samples every k-th simulated round (default 1).
	IntervalRounds int `json:"interval_rounds,omitempty"`
	// MaxSamples bounds each series' ring buffer (default
	// metrics.DefaultMaxSamples); the ring keeps the most recent samples.
	MaxSamples int `json:"max_samples,omitempty"`
	// Series selects recorded series by name (metrics.AllSeries lists
	// the vocabulary; empty means all). Normalization sorts and dedupes
	// the list, so spec files naming the same set in any order
	// canonicalize — and cache-key — identically.
	Series []string `json:"series,omitempty"`
	// HistBins is the bin count of the JCT/wait histograms (default
	// metrics.DefaultHistBins).
	HistBins int `json:"hist_bins,omitempty"`
}

// DecisionsSpec attaches the decision recorder (internal/decision) to
// the run. Like metrics, recording is fast-forward-safe and purely
// observational — results with and without it are byte-identical — and
// the trace rides on the result (and through the runner cache); it is
// what `palsim/palsweep -metrics` archive next to the telemetry payload
// and what `palexplain` renders.
type DecisionsSpec struct {
	// Enabled switches recording on. When false, every other field must
	// be zero (a configured-but-disabled block is almost certainly a
	// mistake, so it is rejected).
	Enabled bool `json:"enabled,omitempty"`
	// MaxRecords bounds the trace's ring buffer (default
	// decision.DefaultMaxRecords); the ring keeps the most recent
	// decision records and flags the trace Truncated when any drop.
	MaxRecords int `json:"max_records,omitempty"`
	// Record selects recorded facets by name (decision.AllFacets lists
	// the vocabulary; empty means all). Normalization sorts and dedupes
	// the list, so spec files naming the same set in any order
	// canonicalize — and cache-key — identically.
	Record []string `json:"record,omitempty"`
}

// ForkSpec configures the warmup-then-switch fork: the run proceeds
// under the warmup policies up to (but not including) the horizon
// round, the engine state is captured there, and the run resumes under
// the spec's own policy and sched. Leaving Policy/Sched empty selects
// the spec's own — a pure prefix-caching fork whose result is
// byte-identical to the unforked run.
type ForkSpec struct {
	// Rounds is the horizon: the scheduling round at which the run
	// switches from the warmup policies to the spec's own. The capture
	// happens at the top of this round, before its admissions.
	Rounds int `json:"rounds"`
	// Policy names the warmup placement policy (a registry name from
	// internal/place). Empty selects the spec's own policy.
	Policy string `json:"policy,omitempty"`
	// Sched names the warmup scheduling policy (a registry name from
	// internal/sched, built with default parameters unless it equals the
	// spec's own sched, which keeps the spec's params). Empty selects
	// the spec's own sched.
	Sched string `json:"sched,omitempty"`
}

// Parse decodes, normalizes and validates a scenario spec. Unknown
// fields are an error.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: decode: %w", err)
	}
	// A second document in the stream means the file is not one spec.
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after spec")
	}
	s.normalize()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Read parses a spec from a reader.
func Read(r io.Reader) (*Spec, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("scenario: read: %w", err)
	}
	return Parse(data)
}

// LoadFile parses the spec in the named file.
func LoadFile(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return s, nil
}

// Normalize applies the documented defaults in place. Parse calls it
// automatically; callers that mutate a parsed spec (e.g. a CLI flag
// force-enabling metrics) should re-Normalize so the spec's canonical
// form — and therefore its cache key — matches what parsing the mutated
// configuration from a file would produce.
func (s *Spec) Normalize() { s.normalize() }

// normalize applies defaults in place. It is idempotent: normalizing a
// normalized spec changes nothing, the property that makes Canonical a
// fixed point under re-parsing.
func (s *Spec) normalize() {
	if s.Name == "" {
		s.Name = "scenario"
	}
	if s.Grid != nil {
		// A grid base stays otherwise un-normalized: defaults are applied
		// per expanded cell after the axis overrides, so cross-field
		// defaults (the synthetic workload seed following the root seed,
		// synergy num_jobs following jobs_per_hour) are computed from each
		// cell's own values instead of being frozen at the base's.
		return
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Cluster.Nodes == 0 {
		s.Cluster.Nodes = 16
	}
	if s.Cluster.GPUsPerNode == 0 {
		s.Cluster.GPUsPerNode = 4
	}
	if s.Profile.Source == "" {
		s.Profile.Source = "longhorn"
	}
	if s.Profile.Seed == 0 {
		// Default to the experiments layer's seeds so a scenario over a
		// same-sized cluster experiences the exact per-GPU scores the
		// paper figures ran on (the testbed generator uses a shifted
		// seed there, matching Fig. 8).
		switch s.Profile.Source {
		case "longhorn", "frontera":
			s.Profile.Seed = defaultProfileSeed
		case "testbed":
			s.Profile.Seed = defaultTestbedSeed
		}
	}
	if s.Workload.Source == "" {
		s.Workload.Source = "synthetic"
	}
	switch s.Workload.Source {
	case "sia-philly":
		if s.Workload.Workload == 0 {
			s.Workload.Workload = 1
		}
		def := trace.DefaultSiaPhillyParams()
		// Workload seeds default to the published generators' seeds, so
		// a scenario naming "sia-philly" without a seed replays the
		// exact traces the paper figures ran on.
		if s.Workload.Seed == 0 {
			s.Workload.Seed = def.Seed
		}
		if s.Workload.NumJobs == 0 {
			s.Workload.NumJobs = def.NumJobs
		}
		if s.Workload.WindowHours == 0 {
			s.Workload.WindowHours = def.WindowHours
		}
	case "synergy":
		if s.Workload.JobsPerHour == 0 {
			s.Workload.JobsPerHour = 10
		}
		def := trace.DefaultSynergyParams(s.Workload.JobsPerHour)
		if s.Workload.Seed == 0 {
			s.Workload.Seed = def.Seed
		}
		if s.Workload.NumJobs == 0 {
			s.Workload.NumJobs = def.NumJobs
		}
	case "synthetic":
		if s.Workload.Arrivals == "" {
			s.Workload.Arrivals = string(trace.ArrivalPoisson)
		}
		if s.Workload.JobsPerHour == 0 {
			s.Workload.JobsPerHour = 10
		}
		if s.Workload.NumJobs == 0 {
			s.Workload.NumJobs = 500
		}
		if s.Workload.Seed == 0 {
			s.Workload.Seed = s.Seed
		}
	}
	if s.Policy.Name == "" {
		s.Policy.Name = "pal"
	}
	if s.Sched.Name == "" {
		s.Sched.Name = "fifo"
	}
	if len(s.Sched.Params) == 0 {
		s.Sched.Params = nil
	}
	if s.Admission == "" {
		s.Admission = "admit-fits"
	}
	if s.Locality.Lacross == 0 {
		s.Locality.Lacross = 1.5
	}
	if s.Metrics.Enabled {
		if s.Metrics.IntervalRounds == 0 {
			s.Metrics.IntervalRounds = 1
		}
		if s.Metrics.MaxSamples == 0 {
			s.Metrics.MaxSamples = metrics.DefaultMaxSamples
		}
		if s.Metrics.HistBins == 0 {
			s.Metrics.HistBins = metrics.DefaultHistBins
		}
		s.Metrics.Series = sortDedup(s.Metrics.Series)
	}
	if s.Decisions.Enabled {
		if s.Decisions.MaxRecords == 0 {
			s.Decisions.MaxRecords = decision.DefaultMaxRecords
		}
		s.Decisions.Record = sortDedup(s.Decisions.Record)
	}
	if s.Fork != nil {
		// A fork naming the spec's own policy/sched canonicalizes to the
		// empty form ("own"), so the two spellings of the same warmup
		// configuration share one cache key.
		if s.Fork.Policy == s.Policy.Name {
			s.Fork.Policy = ""
		}
		if s.Fork.Sched == s.Sched.Name {
			s.Fork.Sched = ""
		}
	}
}

// sortDedup canonicalizes a name list: sorted, deduplicated, and nil
// when empty — the form the cache keys and Canonical rely on.
func sortDedup(names []string) []string {
	if len(names) == 0 {
		return nil
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	dedup := sorted[:0]
	for i, name := range sorted {
		if i == 0 || name != sorted[i-1] {
			dedup = append(dedup, name)
		}
	}
	return dedup
}

// Validate checks the normalized spec for structural errors that do not
// require building anything. Name resolution against the policy
// registries happens in Build, where construction can fail anyway.
// Every error states the offending value *and* the expected range, so a
// bad spec is fixable from the message alone.
func (s *Spec) Validate() error {
	if s.Grid != nil {
		// Grid-bearing specs are validated through their expansion: the
		// axis lists are checked, then every expanded cell is normalized
		// and validated like a hand-written spec.
		return s.validateGrid()
	}
	if s.Cluster.Nodes <= 0 {
		return fmt.Errorf("scenario %s: cluster nodes %d, want >= 1", s.Name, s.Cluster.Nodes)
	}
	if s.Cluster.GPUsPerNode <= 0 {
		return fmt.Errorf("scenario %s: cluster gpus_per_node %d, want >= 1", s.Name, s.Cluster.GPUsPerNode)
	}
	if s.Cluster.NodesPerRack < 0 {
		return fmt.Errorf("scenario %s: cluster nodes_per_rack %d, want >= 0 (0 disables rack grouping)",
			s.Name, s.Cluster.NodesPerRack)
	}
	switch s.Profile.Source {
	case "longhorn", "frontera", "testbed":
	case "file":
		if s.Profile.Path == "" {
			return fmt.Errorf("scenario %s: profile source \"file\" needs a path", s.Name)
		}
	default:
		return fmt.Errorf("scenario %s: unknown profile source %q (want longhorn, frontera, testbed or file)",
			s.Name, s.Profile.Source)
	}
	switch s.Workload.Source {
	case "sia-philly":
		if s.Workload.Workload < 1 {
			return fmt.Errorf("scenario %s: sia-philly workload index %d, want >= 1", s.Name, s.Workload.Workload)
		}
	case "synergy":
		if s.Workload.JobsPerHour <= 0 {
			return fmt.Errorf("scenario %s: synergy jobs_per_hour %g, want > 0", s.Name, s.Workload.JobsPerHour)
		}
		if s.Workload.NumJobs <= 0 {
			return fmt.Errorf("scenario %s: synergy num_jobs %d, want >= 1", s.Name, s.Workload.NumJobs)
		}
	case "synthetic":
		if err := s.synthParams().Validate(); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	case "file":
		if s.Workload.Path == "" {
			return fmt.Errorf("scenario %s: workload source \"file\" needs a path", s.Name)
		}
	default:
		return fmt.Errorf("scenario %s: unknown workload source %q (want sia-philly, synergy, synthetic or file)",
			s.Name, s.Workload.Source)
	}
	if s.Locality.Lacross < 1 {
		return fmt.Errorf("scenario %s: lacross %g, want >= 1", s.Name, s.Locality.Lacross)
	}
	if s.Locality.Lrack < 0 || (s.Locality.Lrack > 0 && s.Locality.Lrack < 1) {
		return fmt.Errorf("scenario %s: lrack %g, want 0 (disabled) or >= 1", s.Name, s.Locality.Lrack)
	}
	if s.Engine.RoundSec < 0 {
		return fmt.Errorf("scenario %s: engine round_sec %g, want >= 0 (0 selects the 300 s default)",
			s.Name, s.Engine.RoundSec)
	}
	if s.Engine.MaxRounds < 0 {
		return fmt.Errorf("scenario %s: engine max_rounds %d, want >= 0 (0 selects the 1,000,000-round default)",
			s.Name, s.Engine.MaxRounds)
	}
	if s.Engine.MeasureFirst < 0 {
		return fmt.Errorf("scenario %s: engine measure_first %d, want >= 0 (a job ID)",
			s.Name, s.Engine.MeasureFirst)
	}
	if s.Engine.MeasureLast < 0 {
		return fmt.Errorf("scenario %s: engine measure_last %d, want >= 0 (a job ID; 0 means the whole trace)",
			s.Name, s.Engine.MeasureLast)
	}
	if err := s.validateMetrics(); err != nil {
		return err
	}
	if err := s.validateDecisions(); err != nil {
		return err
	}
	return s.validateFork()
}

// validateFork checks the fork block. Warmup policy names resolve in
// Build (like the spec's own policy names), where construction can fail
// anyway.
func (s *Spec) validateFork() error {
	f := s.Fork
	if f == nil {
		return nil
	}
	if f.Rounds < 1 {
		return fmt.Errorf("scenario %s: fork rounds %d, want >= 1 (the round the run switches policies at)",
			s.Name, f.Rounds)
	}
	return nil
}

// validateMetrics checks the metrics block.
func (s *Spec) validateMetrics() error {
	m := s.Metrics
	if !m.Enabled {
		if m.IntervalRounds != 0 || m.MaxSamples != 0 || m.HistBins != 0 || len(m.Series) != 0 {
			return fmt.Errorf("scenario %s: metrics configured but not enabled (set \"enabled\": true)", s.Name)
		}
		return nil
	}
	if m.IntervalRounds < 0 {
		return fmt.Errorf("scenario %s: metrics interval_rounds %d, want >= 0 (0 selects every round)",
			s.Name, m.IntervalRounds)
	}
	if m.MaxSamples < 0 {
		return fmt.Errorf("scenario %s: metrics max_samples %d, want >= 0 (0 selects the default %d)",
			s.Name, m.MaxSamples, metrics.DefaultMaxSamples)
	}
	if m.HistBins < 0 {
		return fmt.Errorf("scenario %s: metrics hist_bins %d, want >= 0 (0 selects the default %d)",
			s.Name, m.HistBins, metrics.DefaultHistBins)
	}
	for _, name := range m.Series {
		if !metrics.ValidSeries(name) {
			return fmt.Errorf("scenario %s: unknown metrics series %q (have %v)",
				s.Name, name, metrics.AllSeries())
		}
	}
	return nil
}

// validateDecisions checks the decisions block, mirroring the metrics
// block's conventions (value + expected range in every message).
func (s *Spec) validateDecisions() error {
	d := s.Decisions
	if !d.Enabled {
		if d.MaxRecords != 0 || len(d.Record) != 0 {
			return fmt.Errorf("scenario %s: decisions configured but not enabled (set \"enabled\": true)", s.Name)
		}
		return nil
	}
	if d.MaxRecords < 0 {
		return fmt.Errorf("scenario %s: decisions max_records %d, want >= 0 (0 selects the default %d)",
			s.Name, d.MaxRecords, decision.DefaultMaxRecords)
	}
	for _, name := range d.Record {
		if !decision.ValidFacet(name) {
			return fmt.Errorf("scenario %s: unknown decisions record facet %q (have %v)",
				s.Name, name, decision.AllFacets())
		}
	}
	return nil
}

// synthParams maps the workload spec onto the synthetic generator's
// parameters.
func (s *Spec) synthParams() trace.SynthParams {
	w := s.Workload
	return trace.SynthParams{
		Name:          s.Name + "-synth",
		NumJobs:       w.NumJobs,
		Seed:          w.Seed,
		Arrivals:      trace.ArrivalProcess(w.Arrivals),
		JobsPerHour:   w.JobsPerHour,
		BurstFactor:   w.BurstFactor,
		BurstFraction: w.BurstFraction,
		BurstMeanSec:  w.BurstMeanSec,
		PeriodHours:   w.PeriodHours,
		PeakToTrough:  w.PeakToTrough,
		Demands:       w.Demands,
		DemandWeights: w.DemandWeights,
		MedianWorkSec: w.MedianWorkSec,
		DurationSigma: w.DurationSigma,
		MinWorkSec:    w.MinWorkSec,
		MaxWorkSec:    w.MaxWorkSec,
	}
}

// Canonical returns the normalized spec as stable, indented JSON: fixed
// field order (struct order), defaults filled in, no unknown fields.
// Parse(Canonical(s)) yields a spec whose Canonical bytes are identical
// — the round-trip stability the cache keys and the checked-in example
// specs rely on.
func (s *Spec) Canonical() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return nil, fmt.Errorf("scenario: canonicalize: %w", err)
	}
	return buf.Bytes(), nil
}
