package scenario

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/export"
)

// forkBaseSpec is a small but non-trivial configuration: enough jobs
// and few enough GPUs that the queue stays contended across the fork
// horizon, with both sinks recording so their state rides the
// snapshot.
const forkBaseSpec = `{
	"name": "fork-base",
	"cluster": {"nodes": 4, "gpus_per_node": 4},
	"workload": {"source": "synthetic", "num_jobs": 60, "jobs_per_hour": 40},
	"sched": {"name": "las"},
	"metrics": {"enabled": true},
	"decisions": {"enabled": true}
}`

// buildSpec parses and builds a spec from JSON, with optional mutation
// between parse and build.
func buildSpec(t *testing.T, src string, mutate func(*Spec)) *Built {
	t.Helper()
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if mutate != nil {
		mutate(s)
		s.Normalize()
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	b, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// resultBytes archives a result through the versioned codec with the
// wall-clock field neutralized — the byte-identity comparison form.
func resultBytes(t *testing.T, b *Built) []byte {
	t.Helper()
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	res.PlaceTimes = nil
	var buf bytes.Buffer
	if err := export.EncodeResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestForkedRunByteIdentical: a fork whose warmup equals the spec's own
// policies (pure prefix caching) must reproduce the unforked run bit
// for bit — capture/resume is not allowed to perturb anything.
func TestForkedRunByteIdentical(t *testing.T) {
	plain := buildSpec(t, forkBaseSpec, nil)
	want := resultBytes(t, plain)
	for _, horizon := range []int{1, 7, 40} {
		forked := buildSpec(t, forkBaseSpec, func(s *Spec) {
			s.Fork = &ForkSpec{Rounds: horizon}
		})
		if got := resultBytes(t, forked); !bytes.Equal(got, want) {
			t.Errorf("fork at round %d diverged from the unforked run", horizon)
		}
	}
}

// TestSharedSnapshotMatchesOwnCapture: cells differing only in their
// post-fork policies share a prefix; resuming cell B from cell A's
// snapshot must equal B simulating its own prefix — the property that
// makes cross-cell snapshot sharing sound.
func TestSharedSnapshotMatchesOwnCapture(t *testing.T) {
	fork := &ForkSpec{Rounds: 12, Policy: "packed-sticky", Sched: "fifo"}
	cellA := buildSpec(t, forkBaseSpec, func(s *Spec) {
		s.Fork = &ForkSpec{Rounds: fork.Rounds, Policy: fork.Policy, Sched: fork.Sched}
		s.Policy.Name = "pal"
	})
	cellB := buildSpec(t, forkBaseSpec, func(s *Spec) {
		s.Fork = &ForkSpec{Rounds: fork.Rounds, Policy: fork.Policy, Sched: fork.Sched}
		s.Policy.Name = "pm-first"
		s.Sched.Name = "srtf"
		s.Sched.Params = nil
	})
	if cellA.PrefixKey() != cellB.PrefixKey() {
		t.Fatalf("cells differing only in post-fork policies have different prefix keys:\n  A %s\n  B %s",
			cellA.PrefixKey(), cellB.PrefixKey())
	}
	snapA, early, err := cellA.CaptureSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snapA == nil {
		t.Fatalf("warmup completed before the horizon (early=%v); enlarge the workload", early != nil)
	}
	shared, err := cellB.ResumeFrom(snapA)
	if err != nil {
		t.Fatal(err)
	}
	own, err := cellB.RunForked(nil)
	if err != nil {
		t.Fatal(err)
	}
	shared.PlaceTimes, own.PlaceTimes = nil, nil
	var a, b bytes.Buffer
	if err := export.EncodeResult(&a, shared); err != nil {
		t.Fatal(err)
	}
	if err := export.EncodeResult(&b, own); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("resuming from a shared snapshot diverged from simulating the cell's own prefix")
	}
}

// TestPrefixKeySensitivity: the prefix key must separate cells whose
// warmup runs genuinely differ — and only those.
func TestPrefixKeySensitivity(t *testing.T) {
	base := func() *Built {
		return buildSpec(t, forkBaseSpec, func(s *Spec) {
			s.Fork = &ForkSpec{Rounds: 10, Policy: "packed-sticky"}
		})
	}
	ref := base().PrefixKey()

	// The cell's own post-fork policy must NOT move the prefix key.
	same := buildSpec(t, forkBaseSpec, func(s *Spec) {
		s.Fork = &ForkSpec{Rounds: 10, Policy: "packed-sticky"}
		s.Policy.Name = "pm-first"
	})
	if same.PrefixKey() != ref {
		t.Error("post-fork policy perturbs the prefix key (kills snapshot sharing)")
	}
	// Neither must the cell's name.
	renamed := buildSpec(t, forkBaseSpec, func(s *Spec) {
		s.Fork = &ForkSpec{Rounds: 10, Policy: "packed-sticky"}
		s.Name = "other"
	})
	if renamed.PrefixKey() != ref {
		t.Error("cell name perturbs the prefix key (kills snapshot sharing)")
	}

	// Everything the warmup run can observe must move it.
	perturb := map[string]func(*Spec){
		"horizon":       func(s *Spec) { s.Fork.Rounds = 11 },
		"warmup policy": func(s *Spec) { s.Fork.Policy = "random-sticky" },
		"warmup sched":  func(s *Spec) { s.Fork.Sched = "fifo" },
		"seed":          func(s *Spec) { s.Seed = 2 },
		"cluster":       func(s *Spec) { s.Cluster.Nodes = 5 },
		"round length":  func(s *Spec) { s.Engine.RoundSec = 120 },
		"metrics off":   func(s *Spec) { s.Metrics = MetricsSpec{} },
	}
	for what, mutate := range perturb {
		b := buildSpec(t, forkBaseSpec, func(s *Spec) {
			s.Fork = &ForkSpec{Rounds: 10, Policy: "packed-sticky"}
			mutate(s)
		})
		if b.PrefixKey() == ref {
			t.Errorf("%s does not perturb the prefix key (cells with different warmups would share a snapshot)", what)
		}
	}
}

// TestForkNormalization: naming the spec's own policy as warmup
// canonicalizes to the empty ("own") form, so both spellings share one
// cache key; a fork block must also survive grid expansion into every
// cell.
func TestForkNormalization(t *testing.T) {
	explicit := buildSpec(t, forkBaseSpec, func(s *Spec) {
		s.Fork = &ForkSpec{Rounds: 10, Policy: s.Policy.Name, Sched: s.Sched.Name}
	})
	if explicit.Spec.Fork.Policy != "" || explicit.Spec.Fork.Sched != "" {
		t.Errorf("own-policy warmup did not canonicalize to empty: %+v", explicit.Spec.Fork)
	}

	src := fmt.Sprintf(`{
		"name": "fg",
		"cluster": {"nodes": 4},
		"workload": {"source": "synthetic", "num_jobs": 30, "jobs_per_hour": 30},
		"fork": {"rounds": 8, "policy": "packed-sticky"},
		"grid": {"policies": ["pal", "pm-first"]}
	}`)
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	cells, err := s.ExpandGrid()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("expanded %d cells, want 2", len(cells))
	}
	keys := make(map[string]bool)
	for _, c := range cells {
		if c.Fork == nil || c.Fork.Rounds != 8 {
			t.Fatalf("cell %s lost the fork block: %+v", c.Name, c.Fork)
		}
		b, err := c.Build()
		if err != nil {
			t.Fatal(err)
		}
		keys[b.PrefixKey()] = true
	}
	if len(keys) != 1 {
		t.Errorf("policy-axis cells of one fork grid have %d prefix keys, want 1 shared", len(keys))
	}
}

// TestForkRejectsBadHorizon: a non-positive horizon is a spec error.
func TestForkRejectsBadHorizon(t *testing.T) {
	_, err := Parse([]byte(`{
		"name": "bad",
		"workload": {"source": "synthetic", "num_jobs": 10},
		"fork": {"rounds": 0}
	}`))
	if err == nil {
		t.Fatal("fork rounds 0 accepted, want a validation error")
	}
}

// TestForkPastEndOfRun: a horizon beyond the run's natural end returns
// the warmup run's result unchanged — with an own-policy warmup that
// is byte-identical to the unforked run.
func TestForkPastEndOfRun(t *testing.T) {
	plain := buildSpec(t, forkBaseSpec, nil)
	want := resultBytes(t, plain)
	forked := buildSpec(t, forkBaseSpec, func(s *Spec) {
		s.Fork = &ForkSpec{Rounds: 1000000}
	})
	if got := resultBytes(t, forked); !bytes.Equal(got, want) {
		t.Error("past-end fork diverged from the unforked run")
	}
}
