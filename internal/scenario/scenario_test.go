package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sim"
)

// minimalSpec is the smallest useful spec: everything defaulted.
const minimalSpec = `{"name": "t", "workload": {"source": "synthetic", "num_jobs": 40, "jobs_per_hour": 20}}`

func TestParseAppliesDefaults(t *testing.T) {
	s, err := Parse([]byte(minimalSpec))
	if err != nil {
		t.Fatal(err)
	}
	if s.Cluster.Nodes != 16 || s.Cluster.GPUsPerNode != 4 {
		t.Errorf("cluster defaults: %+v", s.Cluster)
	}
	if s.Profile.Source != "longhorn" || s.Profile.Seed != defaultProfileSeed {
		t.Errorf("profile defaults: %+v", s.Profile)
	}
	if s.Policy.Name != "pal" || s.Sched.Name != "fifo" || s.Admission != "admit-fits" {
		t.Errorf("policy defaults: %+v / %+v / %s", s.Policy, s.Sched, s.Admission)
	}
	if s.Locality.Lacross != 1.5 {
		t.Errorf("lacross default %g", s.Locality.Lacross)
	}
	if s.Workload.Seed != s.Seed {
		t.Errorf("synthetic workload seed %d, want root seed %d", s.Workload.Seed, s.Seed)
	}
}

func TestParseRejects(t *testing.T) {
	bad := []string{
		`{"name": "t", "workload": {"source": "synthetic"}, "typo_field": 1}`,
		`{"workload": {"source": "philly-prod"}}`,
		`{"workload": {"source": "file"}}`,
		`{"profile": {"source": "file"}, "workload": {"source": "synthetic"}}`,
		`{"profile": {"source": "nvidia"}, "workload": {"source": "synthetic"}}`,
		`{"workload": {"source": "synthetic"}, "locality": {"lacross": 0.5}}`,
		`{"workload": {"source": "synthetic"}, "locality": {"lrack": 0.5}}`,
		`{"workload": {"source": "synthetic", "arrivals": "weekly"}}`,
		`{"cluster": {"nodes": -1}, "workload": {"source": "synthetic"}}`,
		`{"workload": {"source": "synthetic"}, "metrics": {"interval_rounds": 5}}`,
		`{"workload": {"source": "synthetic"}, "metrics": {"enabled": true, "series": ["gpu_temperature"]}}`,
		`{"workload": {"source": "synthetic"}, "metrics": {"enabled": true, "interval_rounds": -1}}`,
		`{} trailing`,
	}
	for _, src := range bad {
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("accepted invalid spec %s", src)
		}
	}
}

// specCorpus enumerates structurally diverse specs for the round-trip
// and build tests.
func specCorpus() []string {
	return []string{
		minimalSpec,
		`{"name": "sia", "workload": {"source": "sia-philly", "workload": 5}, "policy": {"name": "tiresias"}}`,
		`{"name": "syn", "cluster": {"nodes": 8}, "workload": {"source": "synergy", "jobs_per_hour": 8, "num_jobs": 60},
		  "sched": {"name": "las", "params": {"threshold_sec": 14400}}}`,
		`{"name": "burst", "workload": {"source": "synthetic", "arrivals": "bursty", "num_jobs": 50, "jobs_per_hour": 30},
		  "policy": {"name": "pm-first"}, "locality": {"lacross": 2.0, "per_model": true}}`,
		`{"name": "day", "seed": 99, "cluster": {"nodes": 4, "nodes_per_rack": 2},
		  "workload": {"source": "synthetic", "arrivals": "diurnal", "num_jobs": 30, "jobs_per_hour": 15, "peak_to_trough": 3},
		  "policy": {"name": "pal"}, "locality": {"lacross": 1.7, "lrack": 1.2},
		  "engine": {"round_sec": 60, "record_utilization": true, "record_events": true}}`,
		`{"name": "rnd", "profile": {"source": "frontera"}, "workload": {"source": "synthetic", "num_jobs": 25, "jobs_per_hour": 40},
		  "policy": {"name": "random-sticky"}, "sched": {"name": "srtf"}, "admission": "admit-all"}`,
		`{"name": "telemetry", "workload": {"source": "synthetic", "num_jobs": 40, "jobs_per_hour": 20},
		  "metrics": {"enabled": true}}`,
		`{"name": "telemetry-tuned", "workload": {"source": "sia-philly", "workload": 2},
		  "policy": {"name": "tiresias"},
		  "metrics": {"enabled": true, "interval_rounds": 4, "max_samples": 128,
		              "series": ["queue_depth", "gpus_in_use", "queue_depth"], "hist_bins": 32}}`,
	}
}

// fuzzMetrics draws a random-but-valid metrics block: either fully
// disabled (all zero — a configured-but-disabled block is rejected) or
// enabled with every knob independently defaulted or set, including
// unsorted duplicate series names to exercise the normalizer.
func fuzzMetrics(r *rng.RNG) MetricsSpec {
	if r.Intn(2) == 0 {
		return MetricsSpec{}
	}
	m := MetricsSpec{
		Enabled:        true,
		IntervalRounds: r.Intn(4),
		MaxSamples:     r.Intn(2) * 256,
		HistBins:       r.Intn(2) * 16,
	}
	for _, name := range metrics.AllSeries() {
		if r.Intn(3) == 0 {
			m.Series = append(m.Series, name, name) // duplicates on purpose
		}
	}
	return m
}

// checkCanonicalRoundTrip asserts parse → canonicalize → parse is a
// fixed point for one spec source. Shared by the corpus/fuzz round-trip
// test below and the grid fuzz test (grid_test.go).
func checkCanonicalRoundTrip(t *testing.T, src []byte) {
	t.Helper()
	s1, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v (spec %s)", err, src)
	}
	c1, err := s1.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Parse(c1)
	if err != nil {
		t.Fatalf("canonical form does not re-parse: %v\n%s", err, c1)
	}
	c2, err := s2.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1, c2) {
		t.Fatalf("canonicalization not a fixed point:\nfirst:\n%s\nsecond:\n%s", c1, c2)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("re-parsed spec differs:\n%+v\nvs\n%+v", s1, s2)
	}
}

// TestCanonicalRoundTripStable is the fuzz-style stability test: for a
// corpus of specs plus randomized mutations of every optional numeric
// field, parse → canonicalize → parse must be a fixed point.
func TestCanonicalRoundTripStable(t *testing.T) {
	check := checkCanonicalRoundTrip
	for i, src := range specCorpus() {
		i, src := i, src
		t.Run(fmt.Sprintf("corpus-%d", i), func(t *testing.T) { check(t, []byte(src)) })
	}

	// Randomized mutations: perturb every optional numeric knob of a
	// synthetic-workload spec through a seeded RNG. 200 variants give
	// wide coverage of default/non-default combinations while staying
	// deterministic across runs.
	r := rng.New(0xF00D)
	for i := 0; i < 200; i++ {
		s := Spec{
			Name: fmt.Sprintf("fuzz-%d", i),
			Seed: r.Uint64() % 1000,
			Cluster: ClusterSpec{
				Nodes:        1 + r.Intn(32),
				GPUsPerNode:  1 + r.Intn(8),
				NodesPerRack: r.Intn(4),
			},
			Profile: ProfileSpec{
				Source: []string{"longhorn", "frontera", "testbed", ""}[r.Intn(4)],
				Seed:   uint64(r.Intn(3)),
			},
			Workload: WorkloadSpec{
				Source:       "synthetic",
				Arrivals:     []string{"poisson", "bursty", "diurnal", ""}[r.Intn(4)],
				NumJobs:      1 + r.Intn(100),
				JobsPerHour:  float64(1 + r.Intn(50)),
				PeakToTrough: 1 + r.Float64()*4,
				MinWorkSec:   float64(1 + r.Intn(500)),
				MaxWorkSec:   float64(1000 + r.Intn(10000)),
			},
			Policy: PolicySpec{Name: []string{"pal", "pm-first", "tiresias", ""}[r.Intn(4)]},
			Sched:  SchedSpec{Name: []string{"fifo", "las", "srtf", ""}[r.Intn(4)]},
			Locality: LocalitySpec{
				Lacross:  1 + r.Float64()*2,
				PerModel: r.Intn(2) == 0,
			},
			Engine: EngineSpec{
				RoundSec:     float64(r.Intn(3) * 150),
				MaxRounds:    r.Intn(2) * 100000,
				MeasureFirst: r.Intn(5),
				MeasureLast:  5 + r.Intn(50),
			},
			Metrics: fuzzMetrics(r),
		}
		// The testbed profile covers 64 GPUs; keep the fuzzed cluster
		// inside every profile source's coverage.
		if s.Cluster.Nodes*s.Cluster.GPUsPerNode > 64 {
			s.Cluster.GPUsPerNode = 2
			s.Cluster.Nodes = 1 + s.Cluster.Nodes%16
		}
		raw, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(s.Name, func(t *testing.T) { check(t, raw) })
	}
}

func TestBuildAndRunCorpus(t *testing.T) {
	for i, src := range specCorpus() {
		i, src := i, src
		t.Run(fmt.Sprintf("corpus-%d", i), func(t *testing.T) {
			s, err := Parse([]byte(src))
			if err != nil {
				t.Fatal(err)
			}
			b, err := s.Build()
			if err != nil {
				t.Fatal(err)
			}
			if b.Trace.Validate() != nil || len(b.Trace.Jobs) == 0 {
				t.Fatalf("bad trace: %v", b.Trace)
			}
			if b.Profile.NumGPUs() < b.Topo.Size() {
				t.Fatalf("profile %d GPUs < cluster %d", b.Profile.NumGPUs(), b.Topo.Size())
			}
			res, err := b.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Truncated {
				t.Fatalf("corpus scenario truncated: %d unfinished", res.Unfinished)
			}
			done := 0
			for _, j := range res.Jobs {
				if j.Done {
					done++
				}
			}
			if done == 0 {
				t.Error("no job completed")
			}
		})
	}
}

func TestBuildDeterministicAndKeyed(t *testing.T) {
	src := []byte(specCorpus()[3])
	s1, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := s1.Build()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := s2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b1.Trace, b2.Trace) {
		t.Error("traces differ across builds of the same spec")
	}
	if b1.Key() != b2.Key() {
		t.Error("keys differ across builds of the same spec")
	}
	r1, err := b1.Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := b2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.JCTs(), r2.JCTs()) {
		t.Error("same spec produced different JCT tables")
	}

	// A changed knob must change the key.
	s3, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	s3.Locality.Lacross = 2.5
	b3, err := s3.Build()
	if err != nil {
		t.Fatal(err)
	}
	if b3.Key() == b1.Key() {
		t.Error("different lacross, same cache key")
	}
}

// TestWorkloadSaveReplay pins the generate → save → replay round trip:
// a file-sourced scenario over a saved workload must reproduce the
// generating scenario's results exactly.
func TestWorkloadSaveReplay(t *testing.T) {
	gen, err := Parse([]byte(specCorpus()[3]))
	if err != nil {
		t.Fatal(err)
	}
	bGen, err := gen.Build()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "workload.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := bGen.Trace.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	replay := *gen
	replay.Workload = WorkloadSpec{Source: "file", Path: path, Seed: gen.Workload.Seed}
	bReplay, err := replay.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bGen.Trace, bReplay.Trace) {
		t.Fatal("replayed trace differs from generated trace")
	}
	rGen, err := bGen.Run()
	if err != nil {
		t.Fatal(err)
	}
	rReplay, err := bReplay.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rGen.JCTs(), rReplay.JCTs()) {
		t.Error("replayed workload produced different JCTs")
	}
}

func TestAdmissionRegistry(t *testing.T) {
	if got := AdmissionNames(); !reflect.DeepEqual(got, []string{"admit-all", "admit-fits"}) {
		t.Errorf("admission names %v", got)
	}
	if _, err := buildAdmission("admit-nothing"); err == nil {
		t.Error("unknown admission policy accepted")
	}
	a, err := buildAdmission("admit-all")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := a.(sim.AdmitAll); !ok {
		t.Errorf("admit-all built %T", a)
	}
}
