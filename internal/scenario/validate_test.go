package scenario

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/decision"
)

// Every Validate error must state the offending value AND the expected
// range, so a bad spec is fixable from the message alone. The table
// drives each invalid field through Parse (the path CLI users hit) and
// asserts the message names the field and its constraint.
func TestValidateMessagesStateConstraints(t *testing.T) {
	cases := []struct {
		name string
		spec string
		want []string // substrings the error must contain
	}{
		{
			name: "negative nodes",
			spec: `{"cluster": {"nodes": -3}}`,
			want: []string{"cluster nodes -3", "want >= 1"},
		},
		{
			name: "negative gpus_per_node",
			spec: `{"cluster": {"nodes": 4, "gpus_per_node": -1}}`,
			want: []string{"gpus_per_node -1", "want >= 1"},
		},
		{
			name: "negative nodes_per_rack",
			spec: `{"cluster": {"nodes": 4, "nodes_per_rack": -2}}`,
			want: []string{"nodes_per_rack -2", "want >= 0", "disables rack grouping"},
		},
		{
			name: "unknown profile source",
			spec: `{"profile": {"source": "summit"}}`,
			want: []string{`unknown profile source "summit"`, "longhorn, frontera, testbed or file"},
		},
		{
			name: "file profile without path",
			spec: `{"profile": {"source": "file"}}`,
			want: []string{`profile source "file" needs a path`},
		},
		{
			name: "unknown workload source",
			spec: `{"workload": {"source": "alibaba"}}`,
			want: []string{`unknown workload source "alibaba"`, "sia-philly, synergy, synthetic or file"},
		},
		{
			name: "sia workload index below 1",
			spec: `{"workload": {"source": "sia-philly", "workload": -1}}`,
			want: []string{"workload index -1", "want >= 1"},
		},
		{
			name: "negative synergy rate",
			spec: `{"workload": {"source": "synergy", "jobs_per_hour": -4}}`,
			want: []string{"jobs_per_hour -4", "want > 0"},
		},
		{
			name: "negative synergy num_jobs",
			spec: `{"workload": {"source": "synergy", "jobs_per_hour": 8, "num_jobs": -10}}`,
			want: []string{"num_jobs -10", "want >= 1"},
		},
		{
			name: "lacross below 1",
			spec: `{"locality": {"lacross": 0.5}}`,
			want: []string{"lacross 0.5", "want >= 1"},
		},
		{
			name: "lrack between 0 and 1",
			spec: `{"locality": {"lrack": 0.7}}`,
			want: []string{"lrack 0.7", "want 0 (disabled) or >= 1"},
		},
		{
			name: "negative round_sec",
			spec: `{"engine": {"round_sec": -300}}`,
			want: []string{"round_sec -300", "want >= 0", "300 s default"},
		},
		{
			name: "negative max_rounds",
			spec: `{"engine": {"max_rounds": -1}}`,
			want: []string{"max_rounds -1", "want >= 0", "1,000,000-round default"},
		},
		{
			name: "negative measure_first",
			spec: `{"engine": {"measure_first": -5}}`,
			want: []string{"measure_first -5", "want >= 0"},
		},
		{
			name: "negative measure_last",
			spec: `{"engine": {"measure_last": -5}}`,
			want: []string{"measure_last -5", "want >= 0"},
		},
		{
			name: "metrics configured but disabled",
			spec: `{"metrics": {"hist_bins": 32}}`,
			want: []string{"metrics configured but not enabled", `set "enabled": true`},
		},
		{
			name: "negative metrics interval",
			spec: `{"metrics": {"enabled": true, "interval_rounds": -2}}`,
			want: []string{"interval_rounds -2", "want >= 0"},
		},
		{
			name: "negative metrics max_samples",
			spec: `{"metrics": {"enabled": true, "max_samples": -1}}`,
			want: []string{"max_samples -1", "want >= 0", "default"},
		},
		{
			name: "negative metrics hist_bins",
			spec: `{"metrics": {"enabled": true, "hist_bins": -8}}`,
			want: []string{"hist_bins -8", "want >= 0", "default"},
		},
		{
			name: "unknown metrics series",
			spec: `{"metrics": {"enabled": true, "series": ["gpu_temperature"]}}`,
			want: []string{`unknown metrics series "gpu_temperature"`, "have ["},
		},
		{
			name: "decisions configured but disabled",
			spec: `{"decisions": {"max_records": 128}}`,
			want: []string{"decisions configured but not enabled", `set "enabled": true`},
		},
		{
			name: "negative decisions max_records",
			spec: `{"decisions": {"enabled": true, "max_records": -7}}`,
			want: []string{"max_records -7", "want >= 0", "default"},
		},
		{
			name: "unknown decisions record facet",
			spec: `{"decisions": {"enabled": true, "record": ["gut_feeling"]}}`,
			want: []string{`unknown decisions record facet "gut_feeling"`, "have ["},
		},
		{
			name: "grid with no axes",
			spec: `{"workload": {"source": "synthetic"}, "grid": {}}`,
			want: []string{"grid block has no axes", "seeds, nodes, gpus_per_node, policies, scheds, jobs_per_hour, num_jobs, arrivals"},
		},
		{
			name: "grid with explicitly empty axis",
			spec: `{"workload": {"source": "synthetic"}, "grid": {"policies": []}}`,
			want: []string{"grid axis policies is empty", "want >= 1 value"},
		},
		{
			name: "grid axis with duplicate values",
			spec: `{"workload": {"source": "synthetic"}, "grid": {"seeds": [3, 3]}}`,
			want: []string{"grid axis seeds", "repeats value 3", "distinct"},
		},
		{
			name: "grid seed zero",
			spec: `{"workload": {"source": "synthetic"}, "grid": {"seeds": [0]}}`,
			want: []string{"grid seeds value 0", "want >= 1"},
		},
		{
			name: "grid nodes non-positive",
			spec: `{"workload": {"source": "synthetic"}, "grid": {"nodes": [-2]}}`,
			want: []string{"grid nodes value -2", "want >= 1"},
		},
		{
			name: "grid jobs_per_hour non-positive",
			spec: `{"workload": {"source": "synthetic"}, "grid": {"jobs_per_hour": [0]}}`,
			want: []string{"grid jobs_per_hour value 0", "want > 0"},
		},
		{
			name: "grid empty policy name",
			spec: `{"workload": {"source": "synthetic"}, "grid": {"policies": [""]}}`,
			want: []string{`grid policies value ""`, "registered placement-policy name"},
		},
		{
			name: "grid unknown field",
			spec: `{"workload": {"source": "synthetic"}, "grid": {"rack_sizes": [2]}}`,
			want: []string{"rack_sizes"},
		},
		{
			name: "grid cell invalid after expansion",
			spec: `{"workload": {"source": "synthetic"}, "grid": {"arrivals": ["weekly"]}}`,
			want: []string{"grid cell 1 of 1", "arrivals=weekly"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.spec))
			if err == nil {
				t.Fatalf("Parse accepted invalid spec %s", tc.spec)
			}
			for _, want := range tc.want {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q does not state %q", err, want)
				}
			}
		})
	}
}

// TestDecisionsNormalize: an enabled decisions block is canonicalized —
// the default ring size is filled in and the facet list is sorted and
// deduplicated — so two specs that differ only in facet order or
// repetition build the same cache key.
func TestDecisionsNormalize(t *testing.T) {
	spec, err := Parse([]byte(
		`{"decisions": {"enabled": true, "record": ["placements", "order", "placements", "ceilings"]}}`))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := spec.Decisions.MaxRecords, decision.DefaultMaxRecords; got != want {
		t.Errorf("MaxRecords = %d, want default %d", got, want)
	}
	if got, want := spec.Decisions.Record, []string{"ceilings", "order", "placements"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Record = %v, want sorted+deduped %v", got, want)
	}
	// Same block written in a different order must canonicalize (and
	// therefore key) identically.
	other, err := Parse([]byte(
		`{"decisions": {"enabled": true, "record": ["ceilings", "placements", "order"]}}`))
	if err != nil {
		t.Fatal(err)
	}
	ba, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := other.Build()
	if err != nil {
		t.Fatal(err)
	}
	if a, b := ba.Key(), bb.Key(); a != b {
		t.Errorf("facet order changed the cache key: %s vs %s", a, b)
	}
}
