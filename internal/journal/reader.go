package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Process is one loaded journal: the event stream of one sweep
// process.
type Process struct {
	Path   string
	Header Header
	Tasks  []TaskEvent
	// Summary is nil when the process never finished cleanly (crash or
	// cancellation before Close) — reported, never guessed at.
	Summary *Summary
}

// Name renders a short human identity for the process: its role plus
// shard when sharded, falling back to the file name.
func (p *Process) Name() string {
	if p.Header.Role == "" {
		return strings.TrimSuffix(filepath.Base(p.Path), Ext)
	}
	if p.Header.Shard != "" {
		return fmt.Sprintf("%s shard %s", p.Header.Role, p.Header.Shard)
	}
	return fmt.Sprintf("%s pid %d", p.Header.Role, p.Header.PID)
}

// TierCounts are per-outcome task totals counted from the task events.
// SnapshotForks counts executed tasks that resumed a shared engine
// snapshot instead of simulating their warmup prefix; Executed counts
// only full from-scratch simulations.
type TierCounts struct {
	Tasks, Executed, SnapshotForks, MemoryHits, StoreHits, Errors int64
}

// Counts tallies the process's task events by outcome.
func (p *Process) Counts() TierCounts {
	var c TierCounts
	for _, t := range p.Tasks {
		c.Tasks++
		switch t.Outcome {
		case "executed":
			c.Executed++
		case "snapshot-fork":
			c.SnapshotForks++
		case "memory-hit":
			c.MemoryHits++
		case "store-hit":
			c.StoreHits++
		case "error":
			c.Errors++
		}
	}
	return c
}

// EngineCounters returns the process's summed engine introspection
// counters: the summary's Engine total when present, else a sum over
// the task events (the crashed-process fallback). ok is false when
// neither exists — a journal written before the counters field, or a
// sweep whose runs carried no counters — so reports render "-" instead
// of fabricating zeros.
func (p *Process) EngineCounters() (*sim.Counters, bool) {
	if p.Summary != nil && p.Summary.Engine != nil {
		return p.Summary.Engine, true
	}
	var sum *sim.Counters
	for i := range p.Tasks {
		if c := p.Tasks[i].Counters; c != nil {
			if sum == nil {
				sum = &sim.Counters{}
			}
			sum.Add(c)
		}
	}
	return sum, sum != nil
}

// WallMS returns the process's wall-clock extent in milliseconds: the
// summary's end minus the header's start, falling back to the last
// task's end for summary-less journals (0 when no tasks landed either).
func (p *Process) WallMS() float64 {
	if p.Summary != nil {
		return float64(p.Summary.EndMS - p.Header.StartMS)
	}
	var end float64
	for _, t := range p.Tasks {
		if e := float64(t.StartMS) + t.DurMS; e > end {
			end = e
		}
	}
	if end == 0 {
		return 0
	}
	return end - float64(p.Header.StartMS)
}

// WorkerBusy sums task durations per worker slot, in milliseconds.
// Slots that carried no tasks are absent.
func (p *Process) WorkerBusy() map[int]float64 {
	busy := make(map[int]float64)
	for _, t := range p.Tasks {
		busy[t.Worker] += t.DurMS
	}
	return busy
}

// Load reads one journal file. Records of unknown type are skipped
// (forward compatibility); a torn trailing line — a crashed writer —
// is skipped like the store index's, while a malformed line elsewhere
// is an error naming the line.
func Load(path string) (*Process, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()

	p := &Process{Path: path}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var pendingErr error // a parse failure is fatal only if another line follows
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if pendingErr != nil {
			return nil, pendingErr
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var tag struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &tag); err != nil {
			pendingErr = fmt.Errorf("journal: %s line %d: %w", path, lineNo, err)
			continue
		}
		switch tag.Type {
		case TypeHeader:
			if err := json.Unmarshal(line, &p.Header); err != nil {
				pendingErr = fmt.Errorf("journal: %s line %d: %w", path, lineNo, err)
			}
		case TypeTask:
			var t TaskEvent
			if err := json.Unmarshal(line, &t); err != nil {
				pendingErr = fmt.Errorf("journal: %s line %d: %w", path, lineNo, err)
				continue
			}
			p.Tasks = append(p.Tasks, t)
		case TypeSummary:
			var s Summary
			if err := json.Unmarshal(line, &s); err != nil {
				pendingErr = fmt.Errorf("journal: %s line %d: %w", path, lineNo, err)
				continue
			}
			p.Summary = &s
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("journal: %s: %w", path, err)
	}
	return p, nil
}

// LoadDir loads every *.journal.jsonl in dir, ordered by process start
// time (ties by path) — the cross-shard timeline order.
func LoadDir(dir string) ([]*Process, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var procs []*Process
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), Ext) {
			continue
		}
		p, err := Load(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool {
		if procs[i].Header.StartMS != procs[j].Header.StartMS {
			return procs[i].Header.StartMS < procs[j].Header.StartMS
		}
		return procs[i].Path < procs[j].Path
	})
	if len(procs) == 0 {
		return nil, fmt.Errorf("journal: no journals found in %s (looked for *%s files)", dir, Ext)
	}
	return procs, nil
}

// SlowTask pairs a task event with the process that ran it, for the
// cross-shard slowest-cells view.
type SlowTask struct {
	Proc *Process
	Task TaskEvent
}

// SlowestTasks returns the n longest-running tasks across all
// processes, longest first; ties break deterministically by label, key
// and journal path so reports are stable.
func SlowestTasks(procs []*Process, n int) []SlowTask {
	var all []SlowTask
	for _, p := range procs {
		for _, t := range p.Tasks {
			all = append(all, SlowTask{Proc: p, Task: t})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Task.DurMS != b.Task.DurMS {
			return a.Task.DurMS > b.Task.DurMS
		}
		if a.Task.Label != b.Task.Label {
			return a.Task.Label < b.Task.Label
		}
		if a.Task.Key != b.Task.Key {
			return a.Task.Key < b.Task.Key
		}
		return a.Proc.Path < b.Proc.Path
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}
