package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
)

// fakeBackend is an in-memory runner.Backend with an optional size
// reporter and injectable failures, for exercising the probe wrapper.
type fakeBackend struct {
	mu      sync.Mutex
	objects map[string]*sim.Result
	getErr  error
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{objects: make(map[string]*sim.Result)}
}

func (b *fakeBackend) Get(key string) (*sim.Result, bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.getErr != nil {
		return nil, false, b.getErr
	}
	res, ok := b.objects[key]
	return res, ok, nil
}

func (b *fakeBackend) Put(key string, res *sim.Result) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.objects[key] = res
	return nil
}

func (b *fakeBackend) ObjectSize(key string) (int64, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.objects[key]; ok {
		return 1000, true
	}
	return 0, false
}

// TestWriterReaderRoundTrip: a journal written through the Probe
// interface loads back with its header, every task event in append
// order, and the summary.
func TestWriterReaderRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Header{Role: "palsweep", Shard: "1/3", Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	spans := []runner.TaskSpan{
		{Key: "k1", Label: "cell a", Worker: 0, Outcome: runner.OutcomeExecuted,
			Start: start, Duration: 30 * time.Millisecond, Run: 25 * time.Millisecond},
		{Key: "k2", Label: "cell b", Worker: 3, Outcome: runner.OutcomeStoreHit,
			Start: start.Add(time.Millisecond), Duration: 2 * time.Millisecond},
		{Key: "k3", Label: "cell c", Worker: 1, Outcome: runner.OutcomeError,
			Err: errors.New("boom"), Start: start, Duration: time.Millisecond},
	}
	for _, sp := range spans {
		w.ObserveTask(sp)
	}
	sum := Summary{
		Runner: runner.Stats{Submitted: 3, Completed: 3, Executed: 2, CacheHits: 1},
		Cache:  &runner.CacheStats{Misses: 2, StoreHits: 1, Stored: 2},
	}
	if err := w.Close(sum); err != nil {
		t.Fatal(err)
	}

	p, err := Load(w.Path())
	if err != nil {
		t.Fatal(err)
	}
	if p.Header.Role != "palsweep" || p.Header.Shard != "1/3" || p.Header.Workers != 4 {
		t.Errorf("header round trip: %+v", p.Header)
	}
	if p.Header.Version != Version || p.Header.PID != os.Getpid() {
		t.Errorf("header stamping: %+v", p.Header)
	}
	if len(p.Tasks) != len(spans) {
		t.Fatalf("loaded %d tasks, want %d", len(p.Tasks), len(spans))
	}
	for i, sp := range spans {
		got := p.Tasks[i]
		if got.Key != sp.Key || got.Label != sp.Label || got.Worker != sp.Worker ||
			got.Outcome != string(sp.Outcome) {
			t.Errorf("task %d round trip: %+v vs span %+v", i, got, sp)
		}
	}
	if p.Tasks[2].Error != "boom" {
		t.Errorf("task error round trip: %q", p.Tasks[2].Error)
	}
	if p.Summary == nil {
		t.Fatal("summary not loaded")
	}
	if p.Summary.Runner != sum.Runner {
		t.Errorf("summary runner stats: %+v, want %+v", p.Summary.Runner, sum.Runner)
	}
	if p.Summary.Cache == nil || p.Summary.Cache.StoreHits != 1 {
		t.Errorf("summary cache stats: %+v", p.Summary.Cache)
	}
	if p.Summary.EndMS < p.Header.StartMS {
		t.Errorf("summary end %d before header start %d", p.Summary.EndMS, p.Header.StartMS)
	}
	if p.Summary.Mem.SysMB <= 0 {
		t.Errorf("memstats not captured: %+v", p.Summary.Mem)
	}

	counts := p.Counts()
	want := TierCounts{Tasks: 3, Executed: 1, StoreHits: 1, Errors: 1}
	if counts != want {
		t.Errorf("counts = %+v, want %+v", counts, want)
	}
	busy := p.WorkerBusy()
	if busy[0] != 30 || busy[3] != 2 {
		t.Errorf("worker busy = %v", busy)
	}
}

// TestTornTrailingLineSkipped: a crash mid-append leaves a torn last
// line; Load must skip it (the crashed-writer contract) while a torn
// line in the middle stays a loud error.
func TestTornTrailingLineSkipped(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Header{Role: "palsweep", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	w.ObserveTask(runner.TaskSpan{Key: "k1", Outcome: runner.OutcomeExecuted})
	if err := w.Close(Summary{}); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(w.Path(), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"task","key":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	p, err := Load(w.Path())
	if err != nil {
		t.Fatalf("torn trailing line must be tolerated: %v", err)
	}
	if len(p.Tasks) != 1 || p.Summary == nil {
		t.Errorf("loaded %d tasks, summary %v", len(p.Tasks), p.Summary != nil)
	}

	// The same torn line followed by another record is corruption, not a
	// crash artifact.
	f, err = os.OpenFile(w.Path(), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("\n{\"type\":\"task\",\"key\":\"k2\",\"outcome\":\"executed\"}\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Load(w.Path()); err == nil {
		t.Error("mid-file corruption must be an error")
	} else if !strings.Contains(err.Error(), "line") {
		t.Errorf("corruption error should name the line: %v", err)
	}
}

// TestLoadDirOrdersAndAggregates: LoadDir returns processes in start
// order, SlowestTasks ranks across them, and MergeOps folds the store
// histograms bin-wise.
func TestLoadDirOrdersAndAggregates(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 3; i++ {
		w, err := Create(dir, Header{Role: "palsweep", Shard: fmt.Sprintf("%d/3", i), Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 4; j++ {
			w.ObserveTask(runner.TaskSpan{
				Key:      fmt.Sprintf("key-%d-%d", i, j),
				Label:    fmt.Sprintf("cell %d.%d", i, j),
				Worker:   j % 2,
				Outcome:  runner.OutcomeExecuted,
				Start:    time.Now(),
				Duration: time.Duration(10*(i*4+j)+1) * time.Millisecond,
			})
		}
		if err := w.Close(Summary{Runner: runner.Stats{Submitted: 4, Completed: 4, Executed: 4}}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond) // distinct StartMS per process
	}
	procs, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != 3 {
		t.Fatalf("loaded %d processes, want 3", len(procs))
	}
	for i := 1; i < len(procs); i++ {
		if procs[i].Header.StartMS < procs[i-1].Header.StartMS {
			t.Errorf("processes out of start order: %d before %d",
				procs[i].Header.StartMS, procs[i-1].Header.StartMS)
		}
	}
	slow := SlowestTasks(procs, 5)
	if len(slow) != 5 {
		t.Fatalf("SlowestTasks returned %d, want 5", len(slow))
	}
	if slow[0].Task.Label != "cell 2.3" {
		t.Errorf("slowest task %q, want cell 2.3", slow[0].Task.Label)
	}
	for i := 1; i < len(slow); i++ {
		if slow[i].Task.DurMS > slow[i-1].Task.DurMS {
			t.Errorf("slowest tasks out of order at %d", i)
		}
	}

	a := &OpStats{Count: 2, LatencyMS: stats.NewStreamingHist(0, 250, 250)}
	a.LatencyMS.Observe(1)
	a.LatencyMS.Observe(3)
	b := &OpStats{Count: 3, Misses: 1, LatencyMS: stats.NewStreamingHist(0, 250, 250)}
	b.LatencyMS.Observe(200)
	merged := MergeOps(a, b)
	if merged.Count != 5 || merged.Misses != 1 {
		t.Errorf("merged counts: %+v", merged)
	}
	if merged.LatencyMS.N != 3 || merged.LatencyMS.Min != 1 || merged.LatencyMS.Max != 200 {
		t.Errorf("merged hist: N=%d min=%g max=%g",
			merged.LatencyMS.N, merged.LatencyMS.Min, merged.LatencyMS.Max)
	}
	// Shape mismatch: counts merge, the histogram is dropped loudly-nil.
	c := &OpStats{Count: 1, LatencyMS: stats.NewStreamingHist(0, 100, 10)}
	c.LatencyMS.Observe(5)
	if got := MergeOps(merged, c); got.LatencyMS != nil || got.Count != 6 {
		t.Errorf("mismatched shapes must drop the histogram: %+v", got)
	}
}

// TestBackendProbePassThrough: the probe forwards outcomes untouched
// while recording latency, size, miss and error samples per op.
func TestBackendProbePassThrough(t *testing.T) {
	inner := newFakeBackend()
	p := ProbeBackend(inner)
	res := &sim.Result{Rounds: 7}

	if _, ok, err := p.Get("missing"); ok || err != nil {
		t.Fatalf("probed miss: ok=%v err=%v", ok, err)
	}
	if err := p.Put("k", res); err != nil {
		t.Fatal(err)
	}
	got, ok, err := p.Get("k")
	if !ok || err != nil || got.Rounds != 7 {
		t.Fatalf("probed hit: ok=%v err=%v res=%+v", ok, err, got)
	}
	inner.getErr = errors.New("disk gone")
	if _, _, err := p.Get("k"); err == nil {
		t.Fatal("probe must forward errors")
	}

	get, put := p.Stats()
	if get == nil || put == nil {
		t.Fatal("ops ran but stats are nil")
	}
	if get.Count != 3 || get.Misses != 1 || get.Errors != 1 {
		t.Errorf("get stats: %+v", get)
	}
	if put.Count != 1 || put.Errors != 0 {
		t.Errorf("put stats: %+v", put)
	}
	if get.LatencyMS == nil || get.LatencyMS.N != 3 {
		t.Errorf("get latency samples: %+v", get.LatencyMS)
	}
	if put.Bytes == nil || put.Bytes.N != 1 || put.Bytes.Min != 1000 {
		t.Errorf("put size samples: %+v", put.Bytes)
	}
}

// TestLoadDirEmpty: an empty directory is an explicit error that names
// the directory and the filename pattern it looked for — "palreport
// -journal out/" against the wrong directory must say what was
// searched, not just that nothing was found — and a journal directory
// is created by Create when absent.
func TestLoadDirEmpty(t *testing.T) {
	empty := t.TempDir()
	_, err := LoadDir(empty)
	if err == nil {
		t.Fatal("empty directory must error")
	}
	for _, want := range []string{"no journals found", empty, Ext} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("empty-dir error %q does not name %q", err, want)
		}
	}
	nested := filepath.Join(t.TempDir(), "a", "b")
	w, err := Create(nested, Header{Role: "palsim", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(Summary{}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(nested); err != nil {
		t.Error(err)
	}
}
