//go:build unix

package journal

import (
	"os"
	"syscall"
)

// flock takes an exclusive BSD advisory lock on f, blocking until
// granted; closing the file drops the lock even if the process dies
// first, so a crashed writer can never wedge a journal.
func flock(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX)
}

// funlock releases the advisory lock.
func funlock(f *os.File) {
	_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}
