//go:build !unix

package journal

import "os"

// Off unix there is no flock in the standard library and this
// repository takes no external dependencies, so journal appends degrade
// to plain O_APPEND writes — still atomic per line for the
// one-writer-per-file layout Create enforces.
func flock(*os.File) error { return nil }

func funlock(*os.File) {}
