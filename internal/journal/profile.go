package journal

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles begins a CPU profile at cpuPath and arranges a heap
// profile at memPath (either may be empty to skip that profile), for the
// CLIs' -cpuprofile/-memprofile flags. The returned stop function
// finishes the CPU profile and writes the heap profile; profiles flush
// on clean exit only — a fatal path that skips stop leaves at most a
// partial CPU profile, never corrupt results. stop is never nil.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("journal: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: cpu profile: %w", err)
		}
		cpuFile = f
	}
	return func() error {
		var first error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				first = fmt.Errorf("journal: cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if first == nil {
					first = fmt.Errorf("journal: heap profile: %w", err)
				}
				return first
			}
			runtime.GC() // settle the heap so the profile reflects live data
			err = pprof.WriteHeapProfile(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil && first == nil {
				first = fmt.Errorf("journal: heap profile: %w", err)
			}
		}
		return first
	}, nil
}
