package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Writer appends one process's journal. It implements runner.Probe, so
// wiring is one SetProbe call; ObserveTask may be called from any
// worker goroutine. Append failures are remembered, reported by Close,
// and never propagate into the sweep — observability must not fail
// work, the same degradation contract as the store backend.
type Writer struct {
	mu   sync.Mutex
	f    *os.File
	path string
	err  error // first append failure; later appends are skipped
	// engine accumulates the task spans' engine counters under mu, so
	// Close can fill Summary.Engine without the CLI re-summing events.
	engine *sim.Counters
}

// Create opens a fresh journal file in dir — named
// <role>-<startUnixNano>-<pid>.journal.jsonl, so one directory collects
// the journals of all shard processes of a sweep without coordination —
// and appends the header record. h.Type, h.Version, h.PID and h.StartMS
// are filled in here.
func Create(dir string, h Header) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	now := time.Now()
	h.Type = TypeHeader
	h.Version = Version
	h.PID = os.Getpid()
	h.StartMS = now.UnixMilli()
	path := filepath.Join(dir, fmt.Sprintf("%s-%d-%d%s", h.Role, now.UnixNano(), h.PID, Ext))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	w := &Writer{f: f, path: path}
	if err := w.append(h); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return w, nil
}

// Path returns the journal file's path.
func (w *Writer) Path() string { return w.path }

// append marshals one record and appends it as a single flocked write,
// so a line is either fully present or absent — concurrent appenders
// (not expected, but a duplicate open is survivable) and crashes can
// tear at most the trailing line, which the reader skips.
func (w *Writer) append(v interface{}) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	data = append(data, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if err := flock(w.f); err == nil {
		defer funlock(w.f)
	}
	if _, err := w.f.Write(data); err != nil {
		w.err = fmt.Errorf("journal: append %s: %w", w.path, err)
		return w.err
	}
	return nil
}

// ObserveTask implements runner.Probe: one task record per completed
// task.
func (w *Writer) ObserveTask(sp runner.TaskSpan) {
	ev := TaskEvent{
		Type:     TypeTask,
		Key:      sp.Key,
		Label:    sp.Label,
		Worker:   sp.Worker,
		Outcome:  string(sp.Outcome),
		StartMS:  sp.Start.UnixMilli(),
		DurMS:    float64(sp.Duration) / float64(time.Millisecond),
		RunMS:    float64(sp.Run) / float64(time.Millisecond),
		Counters: sp.Counters,
	}
	if sp.Err != nil {
		ev.Error = sp.Err.Error()
	}
	if sp.Counters != nil {
		w.mu.Lock()
		if w.engine == nil {
			w.engine = &sim.Counters{}
		}
		w.engine.Add(sp.Counters)
		w.mu.Unlock()
	}
	_ = w.append(ev) // degraded, surfaced by Close
}

// Close appends the summary record — stamping EndMS, Type and the Go
// runtime memory statistics — and closes the file. It returns the
// first append failure, if any, so CLIs can warn once.
func (w *Writer) Close(sum Summary) error {
	sum.Type = TypeSummary
	sum.EndMS = time.Now().UnixMilli()
	if sum.Engine == nil {
		w.mu.Lock()
		sum.Engine = w.engine
		w.mu.Unlock()
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	const mb = 1 << 20
	sum.Mem = MemStats{
		HeapAllocMB:  float64(ms.HeapAlloc) / mb,
		TotalAllocMB: float64(ms.TotalAlloc) / mb,
		SysMB:        float64(ms.Sys) / mb,
		NumGC:        ms.NumGC,
		PauseTotalMS: float64(ms.PauseTotalNs) / float64(time.Millisecond),
		Goroutines:   runtime.NumGoroutine(),
	}
	appendErr := w.append(sum)
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Close(); err != nil && appendErr == nil {
		appendErr = fmt.Errorf("journal: close %s: %w", w.path, err)
	}
	return appendErr
}

// Histogram shapes of the store probe. Latencies are clamped into
// [0, 250] ms at 1 ms bins, sizes into [0, 32 MiB] at 64 KiB bins;
// StreamingHist tracks exact extremes, so clamped tails still report
// true min/max and quantiles stay honest at the edges.
const (
	latencyHistHiMS = 250
	latencyHistBins = 250
	sizeHistHi      = 32 << 20
	sizeHistBins    = 512
)

// opAgg accumulates one operation kind under the probe's lock.
type opAgg struct {
	count, errors, misses int64
	latency               *stats.StreamingHist
	bytes                 *stats.StreamingHist
}

func (a *opAgg) observe(d time.Duration, size int64, miss bool, err error) {
	a.count++
	if err != nil {
		a.errors++
	}
	if miss {
		a.misses++
	}
	if a.latency == nil {
		a.latency = stats.NewStreamingHist(0, latencyHistHiMS, latencyHistBins)
	}
	a.latency.Observe(float64(d) / float64(time.Millisecond))
	if size >= 0 {
		if a.bytes == nil {
			a.bytes = stats.NewStreamingHist(0, sizeHistHi, sizeHistBins)
		}
		a.bytes.Observe(float64(size))
	}
}

func (a *opAgg) stats() *OpStats {
	if a.count == 0 {
		return nil
	}
	return &OpStats{
		Count:     a.count,
		Errors:    a.errors,
		Misses:    a.misses,
		LatencyMS: a.latency,
		Bytes:     a.bytes,
	}
}

// objectSizer is the optional interface a backend may implement to
// report encoded object sizes (store.Store does); without it the probe
// records latencies only.
type objectSizer interface {
	ObjectSize(key string) (int64, bool)
}

// BackendProbe wraps a runner.Backend, timing every Get and Put into
// streaming histograms. It is strictly pass-through: results, outcomes
// and errors are untouched, so the cache's tier semantics (including
// the circuit breaker, which detaches the probe and its inner backend
// together) are unchanged.
type BackendProbe struct {
	inner runner.Backend
	sizer objectSizer // nil when the backend cannot report sizes

	mu       sync.Mutex
	get, put opAgg
}

// ProbeBackend wraps b for latency/size sampling.
func ProbeBackend(b runner.Backend) *BackendProbe {
	p := &BackendProbe{inner: b}
	p.sizer, _ = b.(objectSizer)
	return p
}

// Get implements runner.Backend.
func (p *BackendProbe) Get(key string) (*sim.Result, bool, error) {
	t0 := time.Now()
	res, ok, err := p.inner.Get(key)
	d := time.Since(t0)
	size := int64(-1)
	if ok && p.sizer != nil {
		if n, have := p.sizer.ObjectSize(key); have {
			size = n
		}
	}
	p.mu.Lock()
	p.get.observe(d, size, !ok && err == nil, err)
	p.mu.Unlock()
	return res, ok, err
}

// Put implements runner.Backend.
func (p *BackendProbe) Put(key string, res *sim.Result) error {
	t0 := time.Now()
	err := p.inner.Put(key, res)
	d := time.Since(t0)
	size := int64(-1)
	if err == nil && p.sizer != nil {
		if n, have := p.sizer.ObjectSize(key); have {
			size = n
		}
	}
	p.mu.Lock()
	p.put.observe(d, size, false, err)
	p.mu.Unlock()
	return err
}

// Stats snapshots the probe's per-op aggregates (nil when an op never
// ran), ready to embed in the summary record.
func (p *BackendProbe) Stats() (get, put *OpStats) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.get.stats(), p.put.stats()
}
