// Package journal is the observability layer of the orchestration
// stack: where internal/metrics and internal/decision explain what a
// *simulation* did, journal explains what a *sweep process* did —
// which cells it executed versus served from which cache tier, which
// worker slot carried each task and for how long, and how the
// persistent store's I/O behaved — so a grid split across N shard
// processes can be audited for stragglers, per-shard tier hit rates
// and store latency outliers after the fact.
//
// Each process appends one JSONL event stream (a "journal"): a header
// record identifying the process (role, shard, worker count, start
// time), one task record per completed runner task (fed by
// runner.Probe), and a final summary record carrying the pool and
// cache counters, store-probe latency/size histograms and Go runtime
// memory statistics. Appends are single-write, advisory-flocked and
// crash-tolerant: a process that dies mid-sweep leaves a valid journal
// with no summary (the reader reports it as incomplete), and a torn
// trailing line is skipped on load, mirroring the store index.
//
// The read side (Load, LoadDir, plus the aggregation helpers on
// Process) reconstructs a cross-shard timeline from N journal files;
// cmd/palreport -journal renders the tables.
//
// Everything here carries wall-clock by design, and therefore lives
// strictly outside results, cache keys and byte-identity comparisons —
// the same treatment as sim.Result.PlaceTimes. The writer is purely
// observational: a sweep run with a journal attached produces
// byte-identical tables to one without (pinned by
// TestProbeDoesNotPerturbSweep in cmd/palsweep).
package journal

import (
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Version tags the journal event schema. Readers skip record types they
// do not know, so additive changes need no bump; a bump means old
// readers would misinterpret existing fields.
const Version = 1

// Ext is the filename suffix of journal files.
const Ext = ".journal.jsonl"

// Record type tags, the "type" field of every JSONL line.
const (
	TypeHeader  = "header"
	TypeTask    = "task"
	TypeSummary = "summary"
)

// Header is the first record of every journal: who is writing it.
type Header struct {
	Type    string `json:"type"` // TypeHeader
	Version int    `json:"v"`
	// Role names the writing program ("palsweep", "palsim").
	Role string `json:"role"`
	// Shard is the -shard selector ("0/4") or empty when unsharded.
	Shard string `json:"shard,omitempty"`
	// Workers is the pool's concurrency bound.
	Workers int   `json:"workers"`
	PID     int   `json:"pid"`
	StartMS int64 `json:"start_ms"` // wall clock, Unix milliseconds
}

// TaskEvent is one completed runner task: the JSONL form of
// runner.TaskSpan.
type TaskEvent struct {
	Type    string  `json:"type"` // TypeTask
	Key     string  `json:"key,omitempty"`
	Label   string  `json:"label,omitempty"`
	Worker  int     `json:"worker"`
	Outcome string  `json:"outcome"` // runner.TaskOutcome
	Error   string  `json:"error,omitempty"`
	StartMS int64   `json:"start_ms"`         // wall clock, Unix milliseconds
	DurMS   float64 `json:"dur_ms"`           // whole task: cache + I/O + run
	RunMS   float64 `json:"run_ms,omitempty"` // inside the Run closure (0 for hits)
	// Counters are the engine introspection counters the task's run
	// populated (runner.TaskSpan.Counters): present only for executed
	// and snapshot-fork outcomes, and absent entirely in journals
	// written before the field existed — readers must tolerate nil.
	Counters *sim.Counters `json:"counters,omitempty"`
}

// OpStats aggregates one store operation kind (Get or Put): counts and
// streaming latency/size histograms, constant memory regardless of
// sweep size.
type OpStats struct {
	Count  int64 `json:"count"`
	Errors int64 `json:"errors,omitempty"`
	// Misses counts clean Get misses (key absent, no error); zero for
	// Put.
	Misses int64 `json:"misses,omitempty"`
	// LatencyMS holds per-op wall-clock latency samples in milliseconds;
	// Bytes holds encoded object sizes when the backend can report them
	// (store.Store.ObjectSize). Either may be nil when no samples landed.
	LatencyMS *stats.StreamingHist `json:"latency_ms,omitempty"`
	Bytes     *stats.StreamingHist `json:"bytes,omitempty"`
}

// MemStats is the Go-runtime slice of the summary record.
type MemStats struct {
	HeapAllocMB  float64 `json:"heap_alloc_mb"`
	TotalAllocMB float64 `json:"total_alloc_mb"`
	SysMB        float64 `json:"sys_mb"`
	NumGC        uint32  `json:"num_gc"`
	PauseTotalMS float64 `json:"gc_pause_total_ms"`
	Goroutines   int     `json:"goroutines"`
}

// Summary is the final record of a cleanly finished journal: the
// process's lifetime counters and aggregate probes. A journal without
// one belongs to a process that crashed or was cancelled mid-sweep.
type Summary struct {
	Type  string `json:"type"` // TypeSummary
	EndMS int64  `json:"end_ms"`
	// Runner and Cache snapshot the pool's and cache's lifetime
	// counters at exit.
	Runner runner.Stats       `json:"runner"`
	Cache  *runner.CacheStats `json:"cache,omitempty"`
	// StoreGet/StorePut are the store probe's per-op aggregates;
	// StoreDetached reports that the cache's circuit breaker dropped
	// the backend mid-sweep (results after that point were not
	// persisted).
	StoreGet      *OpStats `json:"store_get,omitempty"`
	StorePut      *OpStats `json:"store_put,omitempty"`
	StoreDetached bool     `json:"store_detached,omitempty"`
	// GC/Verify counters, filled by processes that ran store
	// maintenance (zero otherwise).
	GCRemoved      int      `json:"gc_removed,omitempty"`
	VerifyProblems int      `json:"verify_problems,omitempty"`
	Mem            MemStats `json:"mem"`
	// Engine sums the engine introspection counters across every task
	// this process executed (Writer.Close fills it from the task events
	// it observed when the caller leaves it nil). Nil in pre-counter
	// journals and in processes whose runs carried no counters.
	Engine *sim.Counters `json:"engine,omitempty"`
}

// MergeOps folds b into a bin-wise and returns the merged aggregate
// (either argument may be nil). Histograms merge only when their shapes
// agree — always true for probe-produced journals, which share the
// fixed configuration below; on a mismatch the histogram is dropped
// rather than silently mis-binned, while the counts still merge.
func MergeOps(a, b *OpStats) *OpStats {
	if a == nil && b == nil {
		return nil
	}
	out := &OpStats{}
	for _, s := range []*OpStats{a, b} {
		if s == nil {
			continue
		}
		out.Count += s.Count
		out.Errors += s.Errors
		out.Misses += s.Misses
		out.LatencyMS = mergeHist(out.LatencyMS, s.LatencyMS)
		out.Bytes = mergeHist(out.Bytes, s.Bytes)
	}
	return out
}

// mergeHist adds src into dst bin-wise, tracking exact extremes, or
// returns nil when the shapes disagree (mis-binned quantiles would be
// silently wrong). Neither argument is mutated.
func mergeHist(dst, src *stats.StreamingHist) *stats.StreamingHist {
	if src == nil || src.N == 0 {
		return dst
	}
	if dst == nil || dst.N == 0 {
		cp := *src
		cp.Counts = append([]int64(nil), src.Counts...)
		return &cp
	}
	if dst.Lo != src.Lo || dst.Hi != src.Hi || len(dst.Counts) != len(src.Counts) {
		return nil
	}
	out := *dst
	out.Counts = append([]int64(nil), dst.Counts...)
	for i, c := range src.Counts {
		out.Counts[i] += c
	}
	out.N += src.N
	if src.Min < out.Min {
		out.Min = src.Min
	}
	if src.Max > out.Max {
		out.Max = src.Max
	}
	return &out
}
