// Quickstart: build a small GPU cluster with a synthetic variability
// profile, schedule a tiny workload under Tiresias (Packed-Sticky) and
// PAL, and compare job completion times.
//
// Not tied to one paper figure: a minimal end-to-end tour of the
// Equation 1 slowdown machinery (§III) that every figure of the
// evaluation (Figs. 9-20, Table IV) builds on, at toy scale.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/place"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vprof"
)

func main() {
	// 1. A 8-node x 4-GPU cluster with Longhorn-like variability.
	topo := cluster.Topology{NumNodes: 8, GPUsPerNode: 4}
	profile := vprof.GenerateLonghorn(topo.Size(), 42)
	fmt.Printf("cluster: %d GPUs, Class A variability %.1f%% (max %.2fx)\n",
		topo.Size(), 100*profile.Variability(vprof.ClassA), profile.MaxScore(vprof.ClassA))

	// 2. Bin the raw per-GPU scores with silhouette-selected K-Means
	//    (this is what PAL consults at placement time).
	binned := vprof.BinProfile(profile)
	fmt.Printf("Class A PM-score bins: %v\n", roundAll(binned.BinScores(vprof.ClassA)))

	// 3. A small trace: 40 jobs over 2 hours from the Table II model mix.
	params := trace.DefaultSiaPhillyParams()
	params.NumJobs = 40
	params.WindowHours = 2
	tr := trace.SiaPhilly(params, 1)

	// 4. Run the same trace under both placement policies.
	run := func(placer sim.Placer) *sim.Result {
		res, err := sim.Run(sim.Config{
			Topology:    topo,
			Trace:       tr,
			Sched:       sched.FIFO{},
			Placer:      placer,
			TrueProfile: profile,
			Lacross:     1.5,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	tiresias := run(place.NewPacked(true, 1))
	pal := run(core.NewPAL(binned, 1.5, nil))

	// 5. Compare.
	tJCT := stats.Mean(tiresias.JCTs())
	pJCT := stats.Mean(pal.JCTs())
	fmt.Printf("\n%-22s avg JCT %7.1fs  makespan %7.1fs  utilization %.2f\n",
		"Tiresias (baseline):", tJCT, tiresias.Makespan, tiresias.Utilization)
	fmt.Printf("%-22s avg JCT %7.1fs  makespan %7.1fs  utilization %.2f\n",
		"PAL:", pJCT, pal.Makespan, pal.Utilization)
	fmt.Printf("\nPAL improves average JCT by %.1f%%\n", 100*stats.Improvement(tJCT, pJCT))

	// 6. Peek at the L x V matrix PAL traverses for Class A jobs.
	palPolicy := core.NewPAL(binned, 1.5, nil)
	fmt.Printf("\nClass A %s", palPolicy.Matrix(vprof.ClassA))
}

func roundAll(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(int(x*1000)) / 1000
	}
	return out
}
