// Synergy scenario: steady-state scheduling on a 256-GPU cluster with
// Poisson arrivals (Fig. 14's setting, reduced to a runnable size).
// Sweeps the job load and prints average JCT for Tiresias, PM-First and
// PAL, highlighting the multi-GPU subset where variability-awareness
// matters most.
//
//	go run ./examples/synergy -loads 6,10 -jobs 600
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	loadsFlag := flag.String("loads", "6,10", "comma-separated job loads (jobs/hour)")
	numJobs := flag.Int("jobs", 600, "trace length in jobs")
	flag.Parse()

	var loads []float64
	for _, s := range strings.Split(*loadsFlag, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			log.Fatalf("bad load %q: %v", s, err)
		}
		loads = append(loads, v)
	}

	policies := []experiments.Policy{
		experiments.Tiresias, experiments.PMFirst, experiments.PALPolicy,
	}
	fmt.Printf("Synergy steady state, 256 GPUs, FIFO, L_across = %.1f, %d jobs\n\n",
		experiments.SynergyLacross, *numJobs)
	fmt.Printf("%-8s  %-10s  %-12s  %-16s\n", "load", "policy", "avg JCT (h)", "multi-GPU JCT (h)")
	for _, load := range loads {
		params := trace.DefaultSynergyParams(load)
		params.NumJobs = *numJobs
		tr := trace.Synergy(params)
		for _, pol := range policies {
			res, err := experiments.Run(experiments.RunSpec{
				Trace:        tr,
				Topo:         experiments.SynergyTopology(),
				Sched:        experiments.FIFOSched,
				Policy:       pol,
				Profile:      experiments.LonghornProfile(experiments.SynergyTopology().Size()),
				Lacross:      experiments.SynergyLacross,
				Seed:         0xE6,
				MeasureFirst: *numJobs / 4,
				MeasureLast:  *numJobs * 3 / 4,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8s  %-10s  %-12.1f  %-16.1f\n",
				fmt.Sprintf("%gj/h", load), pol.String(),
				stats.Mean(res.JCTs())/3600, stats.Mean(res.MultiGPUJCTs())/3600)
		}
		fmt.Println()
	}
	fmt.Println("multi-GPU jobs are bound by their slowest GPU (bulk-synchronous")
	fmt.Println("training), so variability-aware placement helps them the most.")
}
