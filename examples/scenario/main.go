// Declarative scenario walkthrough: drive a complete simulation from
// the checked-in JSON spec (spec.json) instead of Go code — a workload
// the paper never ran (diurnal arrivals, per-model locality penalties,
// PAL under FIFO on a 64-GPU Longhorn-profile cluster), described
// entirely as data. Extends the paper's evaluation beyond its fixed
// Sia/Synergy/testbed configurations (§IV-B); the mechanics it rides on
// reproduce the Fig. 11 setting.
//
// The example then demonstrates the round trip the scenario layer
// guarantees: save the generated workload, replay it through a
// file-sourced spec, and verify the replay is bit-identical — the
// property that lets a generated workload be archived with the results
// it produced.
//
//	go run ./examples/scenario
//	go run ./examples/scenario -spec path/to/other-spec.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"

	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/stats"
)

func main() {
	specPath := flag.String("spec", "examples/scenario/spec.json", "scenario spec to run")
	flag.Parse()

	spec, err := scenario.LoadFile(*specPath)
	if err != nil {
		fail(err)
	}
	built, err := spec.Build()
	if err != nil {
		fail(err)
	}
	fmt.Printf("scenario %q: %d jobs (%s) on %d GPUs, %s under %s\n",
		spec.Name, len(built.Trace.Jobs), built.Trace.Name, built.Topo.Size(),
		spec.Policy.Name, spec.Sched.Name)
	fmt.Printf("cache key: %s\n\n", built.Key()[:16])

	res, err := built.Run()
	if err != nil {
		fail(err)
	}
	jcts := res.JCTs()
	fmt.Printf("avg JCT   %9.1f s\n", stats.Mean(jcts))
	fmt.Printf("p50 JCT   %9.1f s\n", stats.Percentile(jcts, 50))
	fmt.Printf("p99 JCT   %9.1f s\n", stats.Percentile(jcts, 99))
	fmt.Printf("makespan  %9.1f s   utilization %.1f%%   rounds %d\n",
		res.Makespan, 100*res.Utilization, res.Rounds)
	if res.Truncated {
		fmt.Printf("TRUNCATED: %d jobs unfinished at the MaxRounds cap\n", res.Unfinished)
	}

	// The spec enables the metrics block, so the result carries a
	// telemetry payload: sampled series, per-job lifecycle records and
	// JCT/wait histograms — collected without forfeiting the engine's
	// fast-forwarding (unlike the per-round Observer hook). This is what
	// `palsim -metrics out/` archives and `palreport` aggregates.
	if p := metrics.FromResult(res); p != nil {
		queue, _ := p.SeriesByName(metrics.SeriesQueueDepth)
		fmt.Printf("\ntelemetry: %d series, %d job records; queue depth peaked at %.0f jobs; p90 JCT (binned) %.0f s\n",
			len(p.Series), len(p.Jobs), stats.Max(queue.Values), p.JCTHist.Quantile(90))
	}

	// Round trip: save the generated workload, replay it from the file,
	// and verify the results are bit-identical.
	dir, err := os.MkdirTemp("", "scenario-replay")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(dir)
	tracePath := filepath.Join(dir, "workload.json")
	f, err := os.Create(tracePath)
	if err != nil {
		fail(err)
	}
	if err := built.Trace.Save(f); err != nil {
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}

	replaySpec := *spec
	replaySpec.Workload = scenario.WorkloadSpec{Source: "file", Path: tracePath}
	replayBuilt, err := replaySpec.Build()
	if err != nil {
		fail(err)
	}
	replayRes, err := replayBuilt.Run()
	if err != nil {
		fail(err)
	}
	if !reflect.DeepEqual(res.JCTs(), replayRes.JCTs()) {
		fail(fmt.Errorf("replayed workload produced different JCTs"))
	}
	fmt.Printf("\nreplay: saved %d-job workload, re-ran from file — results bit-identical\n",
		len(built.Trace.Jobs))
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "scenario example: %v\n", err)
	os.Exit(1)
}
