// Custom policy: the engine's Placer interface makes new placement
// policies pluggable. This example implements "Striped" placement — round
// robin across nodes, a strategy some clusters use to balance thermals —
// registers it in the shared placement registry (internal/place), and
// races it against PAL on the same trace, demonstrating how to slot a
// user-defined policy into the evaluation harness.
//
// Extension beyond the paper's figures: it adds a seventh policy to the
// six-way comparison of §IV-A1 (Figs. 11-20), on the Fig. 11 Sia-Philly
// setting. Once registered, a custom policy is also addressable by name
// from declarative scenario specs (internal/scenario) — data, not code,
// selects it.
//
//	go run ./examples/custompolicy
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/place"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vprof"
)

// Striped allocates each job's GPUs round-robin across nodes, maximally
// spreading load (the opposite of packing). It implements sim.Placer.
type Striped struct {
	next int // rotating node cursor
}

// Name implements sim.Placer.
func (s *Striped) Name() string { return "striped" }

// Sticky implements sim.Placer.
func (s *Striped) Sticky() bool { return false }

// PlaceRound implements sim.Placer.
func (s *Striped) PlaceRound(c *cluster.Cluster, need []*sim.Job, _ float64) map[int][]cluster.GPUID {
	out := make(map[int][]cluster.GPUID, len(need))
	var reserved []cluster.GPUID
	for _, j := range need {
		alloc := make([]cluster.GPUID, 0, j.Spec.Demand)
		for len(alloc) < j.Spec.Demand {
			// Walk nodes from the cursor until a free GPU turns up.
			for tries := 0; tries < c.NumNodes(); tries++ {
				node := cluster.NodeID((s.next + tries) % c.NumNodes())
				found := false
				for _, g := range c.GPUsOnNode(node) {
					if c.IsFree(g) {
						alloc = append(alloc, g)
						c.Allocate(j.Spec.ID, []cluster.GPUID{g})
						reserved = append(reserved, g)
						found = true
						break
					}
				}
				if found {
					s.next = (int(node) + 1) % c.NumNodes()
					break
				}
			}
		}
		out[j.Spec.ID] = alloc
	}
	c.Release(reserved)
	return out
}

func main() {
	// Register the custom policy so it is constructible by name — from
	// here, from CLI flags, and from scenario specs.
	place.Register("striped", func(place.BuildEnv) (sim.Placer, error) {
		return &Striped{}, nil
	})

	topo := cluster.Topology{NumNodes: 16, GPUsPerNode: 4}
	profile := vprof.GenerateLonghorn(topo.Size(), 7)
	binned := vprof.BinProfile(profile)

	params := trace.DefaultSiaPhillyParams()
	params.NumJobs = 80
	params.WindowHours = 4
	tr := trace.SiaPhilly(params, 2)

	run := func(p sim.Placer) float64 {
		res, err := sim.Run(sim.Config{
			Topology:    topo,
			Trace:       tr,
			Sched:       sched.FIFO{},
			Placer:      p,
			TrueProfile: profile,
			Lacross:     1.5,
		})
		if err != nil {
			log.Fatal(err)
		}
		return stats.Mean(res.JCTs())
	}

	striped, err := place.Build("striped", place.BuildEnv{})
	if err != nil {
		log.Fatal(err)
	}
	results := []struct {
		name string
		jct  float64
	}{
		{"Striped (custom)", run(striped)},
		{"Tiresias", run(place.NewPacked(true, 3))},
		{"PAL", run(core.NewPAL(binned, 1.5, nil))},
	}
	fmt.Println("80-job Sia-style trace, 64 GPUs, FIFO, L_across = 1.5")
	for _, r := range results {
		fmt.Printf("  %-18s avg JCT %7.1f s\n", r.name, r.jct)
	}
	fmt.Println("\nStriped maximizes spreading, paying the inter-node penalty on")
	fmt.Println("every multi-GPU job; PAL pays it only when the variability win")
	fmt.Println("is worth it. Implement sim.Placer to test your own policy.")
}
