// Rack-locality demo: the paper notes the L×V matrix is "bound by the
// number of locality levels in the cluster" (§III-C1) and evaluates a
// two-level (within-node / across-node) model. This example enables the
// three-level extension — node / rack / cluster — on a racked topology
// and compares PAL's two-level and three-level matrices under a cost
// model where crossing a rack is much more expensive than crossing a
// node inside the rack.
//
// Extension beyond the paper's figures: the paper evaluates only the
// two-level model (all of Figs. 11-20); no published figure corresponds
// to the three-level comparison printed here.
//
//	go run ./examples/rack
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vprof"
)

func main() {
	// 4 racks x 4 nodes x 4 GPUs = 64 GPUs. Spanning nodes inside a rack
	// costs 1.15x; spanning racks costs 1.9x.
	topo := cluster.Topology{NumNodes: 16, GPUsPerNode: 4, NodesPerRack: 4}
	const lrack, lacross = 1.15, 1.9

	profile := vprof.GenerateLonghorn(topo.Size(), 11)
	binned := vprof.BinProfile(profile)

	params := trace.DefaultSiaPhillyParams()
	params.NumJobs = 120
	tr := trace.SiaPhilly(params, 4)

	run := func(rackAware bool) *sim.Result {
		p := core.NewPAL(binned, lacross, nil)
		if rackAware {
			p.EnableRackLevel(lrack)
		}
		res, err := sim.Run(sim.Config{
			Topology:    topo,
			Trace:       tr,
			Sched:       sched.FIFO{},
			Placer:      p,
			TrueProfile: profile,
			Lacross:     lacross,
			Lrack:       lrack,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	two := run(false)
	three := run(true)
	twoJCT := stats.Mean(two.JCTs())
	threeJCT := stats.Mean(three.JCTs())

	fmt.Printf("racked cluster: %d racks x %d nodes x %d GPUs, Lrack=%.2f Lacross=%.2f\n",
		topo.NumNodes/topo.NodesPerRack, topo.NodesPerRack, topo.GPUsPerNode, lrack, lacross)
	fmt.Printf("  PAL, two-level matrix (paper):    avg JCT %8.1f s\n", twoJCT)
	fmt.Printf("  PAL, three-level matrix (rack):   avg JCT %8.1f s (%+.1f%%)\n",
		threeJCT, 100*stats.Improvement(twoJCT, threeJCT))

	// Show a three-level matrix: the rack row slots between node and
	// cluster rows.
	p := core.NewPAL(binned, lacross, nil)
	p.EnableRackLevel(lrack)
	fmt.Printf("\nClass A three-level %s", p.Matrix(vprof.ClassA))
	fmt.Println("\nthe two-level placer treats any multi-node spill as full-price;")
	fmt.Println("the rack-aware matrix can spill cheaply inside a rack first.")
}
