// Sia-Philly scenario: reproduce a single column of Figure 11 — one
// Sia-Philly workload trace on the 64-GPU cluster, all six placement
// policies, FIFO scheduling — and report average JCT normalized to
// Tiresias plus per-policy wait-time summaries.
//
//	go run ./examples/siaphilly -workload 5
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	workload := flag.Int("workload", 5, "Sia-Philly workload index (1-8)")
	flag.Parse()
	if *workload < 1 || *workload > 8 {
		log.Fatalf("workload must be 1-8, got %d", *workload)
	}

	scale := experiments.QuickScale()
	scale.SiaTraces = []int{*workload}
	runs, err := experiments.RunSiaBaseline(scale)
	if err != nil {
		log.Fatal(err)
	}
	run := runs[0]

	base := stats.Mean(run.Results[experiments.Tiresias].JCTs())
	fmt.Printf("Sia-Philly workload %d, 64 GPUs, FIFO scheduling\n\n", *workload)
	fmt.Printf("%-18s  %-12s  %-11s  %-12s  %-9s\n",
		"policy", "avg JCT (h)", "norm (Tir.)", "mean wait(h)", "makespan(h)")
	for _, pol := range experiments.AllPolicies() {
		res := run.Results[pol]
		jct := stats.Mean(res.JCTs())
		fmt.Printf("%-18s  %-12.2f  %-11.3f  %-12.2f  %-9.2f\n",
			pol.String(), jct/3600, jct/base, stats.Mean(res.Waits())/3600, res.Makespan/3600)
	}

	if *workload == 5 {
		fmt.Println("\nworkload 5 contains an early 48-GPU job (ID 19) that blocks the")
		fmt.Println("FIFO queue; variability-aware policies drain the backlog faster:")
		tw := run.Results[experiments.Tiresias].Waits()
		pw := run.Results[experiments.PALPolicy].Waits()
		for _, id := range []int{19, 40, 80, 120, 159} {
			if id < len(tw) {
				fmt.Printf("  job %3d waited %6.2fh under Tiresias, %6.2fh under PAL\n",
					id, tw[id]/3600, pw[id]/3600)
			}
		}
	}
}
