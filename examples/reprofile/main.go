// Online re-profiling demo: the paper's §V-A post-mortem found that node
// 0's Class-A profile had gone stale (profiled scores ~8x lower than the
// penalties jobs experienced) and proposed "dynamic online updates to GPU
// PM-Scores". This example runs the same stale-profile scenario twice —
// once with the static profile, once with the OnlineScorer learning from
// per-rank step-time telemetry — and shows the learned scores converging
// to the truth.
//
// Extension beyond the paper's figures: it reproduces the *incident* of
// §V-A (Fig. 10's workload-1 outlier) and implements the online-update
// future work the section proposes, which the paper itself does not
// evaluate.
//
//	go run ./examples/reprofile
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vprof"
)

func main() {
	// A 64-GPU cluster whose node-0 Class-A profile understates reality
	// by 3x: the scheduler sees "view", jobs experience "truth".
	view := vprof.GenerateTestbed(7)
	truth := vprof.PerturbStaleGPUs(view, vprof.ClassA, []int{0, 1}, 1.0/3.0)
	binned := vprof.BinProfile(view)

	params := trace.DefaultSiaPhillyParams()
	params.NumJobs = 120
	tr := trace.SiaPhilly(params, 1)
	topo := cluster.Topology{NumNodes: 16, GPUsPerNode: 4}

	run := func(scorer vprof.BinnedScorer, obs sim.Observer) *sim.Result {
		res, err := sim.Run(sim.Config{
			Topology:    topo,
			Trace:       tr,
			Sched:       sched.LAS{},
			Placer:      core.NewPAL(scorer, 1.5, nil),
			TrueProfile: truth,
			Lacross:     1.5,
			Observer:    obs,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	staticRes := run(binned, nil)
	online := core.NewOnlineScorer(binned)
	onlineRes := run(online, online)

	fmt.Println("stale profile: GPUs 0-1 are secretly 3x slower for Class A")
	fmt.Printf("  static profile:      avg JCT %7.1f s\n", stats.Mean(staticRes.JCTs()))
	fmt.Printf("  online re-profiling: avg JCT %7.1f s (%s)\n",
		stats.Mean(onlineRes.JCTs()),
		pct(stats.Improvement(stats.Mean(staticRes.JCTs()), stats.Mean(onlineRes.JCTs()))))

	fmt.Println("\nlearned Class-A scores after the run:")
	for g := 0; g < 4; g++ {
		fmt.Printf("  gpu %d: profiled %.2f  learned %.2f  truth %.2f  (%d samples)\n",
			g, binned.Score(vprof.ClassA, g), online.Score(vprof.ClassA, g),
			truth.Score(vprof.ClassA, g), online.Samples(vprof.ClassA, g))
	}
	fmt.Println("\nthe OnlineScorer only overrides the profile when observations")
	fmt.Println("diverge grossly (>1.5x), so measurement noise cannot churn placements.")
}

func pct(frac float64) string { return fmt.Sprintf("%+.1f%%", frac*100) }
