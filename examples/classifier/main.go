// Classifier walkthrough: compute the DRAMUtil x PeakFUUtil coordinates
// of the paper's nine profiled applications (Fig. 3), group them into
// three variability classes with K-Means, and classify a new, unseen
// application against the existing centroids (§III-A).
//
//	go run ./examples/classifier
package main

import (
	"fmt"
	"log"

	"repro/internal/classifier"
	"repro/internal/vprof"
)

func main() {
	apps := classifier.BuiltinApps()
	cl, err := classifier.Classify(apps, 3)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Figure 3: applications in the PeakFUUtil x DRAMUtil plane")
	fmt.Printf("%-18s  %-10s  %-8s  %s\n", "app", "PeakFU", "DRAM", "class")
	for _, a := range apps {
		fu, dram := a.Point()
		c, _ := cl.ClassOf(a.Name)
		fmt.Printf("%-18s  %-10.2f  %-8.2f  Class %s\n", a.Name, fu, dram, c)
	}
	fmt.Println()
	for c, ctr := range cl.Centers {
		fmt.Printf("Class %s centroid: PeakFU=%.2f DRAM=%.2f\n", vprof.Class(c), ctr[0], ctr[1])
	}

	// A new application arrives: profile its kernels, then assign it to
	// the nearest existing class — no cluster-wide re-profiling needed.
	newApp := classifier.AppMetrics{
		Name: "llama-train",
		Kernels: []classifier.Kernel{
			{Name: "attn_gemm", Runtime: 6, DRAMBW: 0.35,
				FUUtil: fuUtil(7.5, 0, 0, 0.5, 6.0)},
			{Name: "layernorm", Runtime: 1.5, DRAMBW: 0.6,
				FUUtil: fuUtil(2.0, 0, 0, 0.5, 0)},
		},
	}
	fu, dram := newApp.Point()
	class := cl.ClassifyNew(newApp)
	fmt.Printf("\nnew app %q: PeakFU=%.2f DRAM=%.2f -> Class %s\n",
		newApp.Name, fu, dram, class)
	fmt.Println("(Class A jobs get placement priority and the best PM-score GPUs.)")
}

// fuUtil packs per-function-unit utilizations in the classifier's order:
// fp32, fp64, texture, special, tensor.
func fuUtil(fp32, fp64, tex, sfu, tensor float64) [5]float64 {
	return [5]float64{fp32, fp64, tex, sfu, tensor}
}
